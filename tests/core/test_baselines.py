"""Unit tests for the baseline / ablation algorithms."""

from __future__ import annotations

import pytest

from repro import (
    local_averaging_solution,
    safe_solution,
    single_shot_local_solution,
    uniform_share_solution,
    unshrunk_averaging_solution,
)


class TestUniformShare:
    def test_matches_safe_on_unit_coefficients(self, cycle8, grid4x4):
        for problem in (cycle8, grid4x4):
            uniform = uniform_share_solution(problem)
            safe = safe_solution(problem)
            assert uniform == pytest.approx(safe)

    def test_can_violate_with_large_coefficients(self):
        from repro import MaxMinLPBuilder

        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "a", 3.0)
        builder.set_consumption("i", "b", 3.0)
        builder.set_benefit("k", "a", 1.0)
        builder.set_benefit("k", "b", 1.0)
        problem = builder.build()
        x = uniform_share_solution(problem)
        # Each agent takes 1/2 but consumes 3/2 -> infeasible; the safe
        # algorithm divides by a_iv and stays feasible.
        assert not problem.is_feasible(problem.to_array(x))
        assert problem.is_feasible(problem.to_array(safe_solution(problem)))


class TestAblations:
    def test_rejects_radius_below_one(self, cycle8):
        with pytest.raises(ValueError):
            single_shot_local_solution(cycle8, 0)
        with pytest.raises(ValueError):
            unshrunk_averaging_solution(cycle8, 0)

    def test_unshrunk_averaging_upper_bounds_shrunk_version(self, grid4x4):
        # Removing the β_j <= 1 factor can only increase every activity.
        shrunk = local_averaging_solution(grid4x4, 1)
        unshrunk = unshrunk_averaging_solution(grid4x4, 1)
        for v in grid4x4.agents:
            assert unshrunk[v] >= shrunk.x[v] - 1e-9

    def test_unshrunk_averaging_violation_bounded_by_resource_ratio(self, grid4x4):
        # Dropping the β_j factor can overload resources, but by no more than
        # max_i N_i/n_i (the quantity β_j compensates for in Section 5.2).
        x = unshrunk_averaging_solution(grid4x4, 1)
        result = local_averaging_solution(grid4x4, 1)
        usage = grid4x4.resource_usage(grid4x4.to_array(x))
        assert usage.max() <= result.resource_ratio + 1e-6

    def test_unshrunk_averaging_violates_on_asymmetric_views(self):
        # Same caterpillar instance as the single-shot test: the view sizes
        # of u/v and of the pendant agents differ wildly, so averaging
        # without the shrink factor overloads the shared resource.
        from repro import MaxMinLPBuilder

        builder = MaxMinLPBuilder()
        builder.set_consumption("i_uv", "u", 1.0)
        builder.set_consumption("i_uv", "v", 1.0)
        builder.set_consumption("i_a", "a", 10.0)
        builder.set_consumption("i_b", "b", 10.0)
        builder.set_benefit("k_u", "u", 1.0)
        builder.set_benefit("k_u", "a", 1.0)
        builder.set_benefit("k_v", "v", 1.0)
        builder.set_benefit("k_v", "b", 1.0)
        problem = builder.build()
        x = unshrunk_averaging_solution(problem, 1)
        assert problem.violation(problem.to_array(x)) > 1e-6
        shrunk = local_averaging_solution(problem, 1)
        assert problem.is_feasible(problem.to_array(shrunk.x), tol=1e-7)

    def test_single_shot_violates_shared_constraints(self):
        # Two agents u, v share a unit resource.  Each has a private
        # beneficiary whose other supporter (a resp. b) is tightly capped and
        # sits at distance 2 from the opposite agent, so u's radius-1 view
        # does not contain v's beneficiary (and vice versa).  Each local LP
        # therefore pushes its own variable to 1 and the shared constraint
        # ends up violated by a factor 2 -- the failure mode the averaging +
        # shrinking of Section 5 repairs.
        from repro import MaxMinLPBuilder

        builder = MaxMinLPBuilder()
        builder.set_consumption("i_uv", "u", 1.0)
        builder.set_consumption("i_uv", "v", 1.0)
        builder.set_consumption("i_a", "a", 10.0)
        builder.set_consumption("i_b", "b", 10.0)
        builder.set_benefit("k_u", "u", 1.0)
        builder.set_benefit("k_u", "a", 1.0)
        builder.set_benefit("k_v", "v", 1.0)
        builder.set_benefit("k_v", "b", 1.0)
        problem = builder.build()

        x = single_shot_local_solution(problem, 1)
        assert x["u"] == pytest.approx(1.0, abs=1e-6)
        assert x["v"] == pytest.approx(1.0, abs=1e-6)
        assert not problem.is_feasible(problem.to_array(x))
        # The paper's algorithm on the same instance stays feasible.
        averaged = local_averaging_solution(problem, 1)
        assert problem.is_feasible(problem.to_array(averaged.x), tol=1e-7)

    def test_single_shot_values_bounded_by_local_budget(self, grid4x4):
        x = single_shot_local_solution(grid4x4, 1)
        # Each local LP still enforces the agent's own constraints, so no
        # activity exceeds the single-agent budget min_i 1/a_iv = 1.
        assert all(value <= 1.0 + 1e-9 for value in x.values())
