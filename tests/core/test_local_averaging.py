"""Unit tests for the Theorem 3 local averaging algorithm."""

from __future__ import annotations

import pytest

from repro import (
    approximation_ratio,
    communication_hypergraph,
    grid_instance,
    local_averaging_solution,
    optimal_objective,
    solve_local_lp,
    theorem3_ratio_bound,
)


class TestBasicBehaviour:
    def test_rejects_radius_below_one(self, cycle8):
        with pytest.raises(ValueError):
            local_averaging_solution(cycle8, 0)

    def test_rejects_mismatched_hypergraph(self, cycle8, path6):
        wrong = communication_hypergraph(path6)
        with pytest.raises(Exception):
            local_averaging_solution(cycle8, 1, hypergraph=wrong)

    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "cycle8", "path6", "grid4x4", "random_instance"]
    )
    def test_solution_is_always_feasible(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        result = local_averaging_solution(problem, 1)
        assert problem.is_feasible(problem.to_array(result.x), tol=1e-7)

    def test_result_fields_are_consistent(self, cycle8):
        result = local_averaging_solution(cycle8, 2, keep_local_solutions=True)
        assert result.R == 2
        assert set(result.x) == set(cycle8.agents)
        assert set(result.beta) == set(cycle8.agents)
        assert set(result.view_sizes) == set(cycle8.agents)
        assert result.local_solutions is not None
        assert set(result.local_solutions) == set(cycle8.agents)
        assert result.proven_ratio_bound == pytest.approx(
            result.resource_ratio * result.beneficiary_ratio
        )
        assert result.objective == pytest.approx(
            cycle8.objective(cycle8.to_array(result.x))
        )

    def test_local_solutions_not_kept_by_default(self, cycle8):
        assert local_averaging_solution(cycle8, 1).local_solutions is None

    def test_beta_is_between_zero_and_one(self, grid4x4):
        result = local_averaging_solution(grid4x4, 1)
        assert all(0.0 < b <= 1.0 for b in result.beta.values())


class TestApproximationGuarantees:
    @pytest.mark.parametrize("R", [1, 2])
    @pytest.mark.parametrize("fixture", ["cycle8", "path6", "grid4x4", "random_instance"])
    def test_ratio_within_instance_bound(self, fixture, R, request):
        problem = request.getfixturevalue(fixture)
        optimum = optimal_objective(problem)
        result = local_averaging_solution(problem, R)
        ratio = approximation_ratio(optimum, result.objective)
        assert ratio <= result.proven_ratio_bound + 1e-6

    @pytest.mark.parametrize("R", [1, 2])
    def test_instance_bound_within_gamma_bound(self, grid4x4, R):
        # max_k M_k/m_k * max_i N_i/n_i <= γ(R-1)·γ(R) (end of Section 5.3).
        H = communication_hypergraph(grid4x4)
        result = local_averaging_solution(grid4x4, R, hypergraph=H)
        assert result.proven_ratio_bound <= theorem3_ratio_bound(H, R) + 1e-9

    def test_symmetric_cycle_is_solved_optimally(self, cycle8):
        # On the vertex-transitive cycle the growth ratios are 1 for R >= 2
        # within the bound's reach, and the algorithm recovers the optimum.
        result = local_averaging_solution(cycle8, 2)
        assert result.objective == pytest.approx(1.5, abs=1e-6)

    def test_larger_radius_does_not_hurt_much_on_grid(self):
        problem = grid_instance((5, 5))
        optimum = optimal_objective(problem)
        r1 = local_averaging_solution(problem, 1)
        r2 = local_averaging_solution(problem, 2)
        ratio1 = approximation_ratio(optimum, r1.objective)
        ratio2 = approximation_ratio(optimum, r2.objective)
        # The guarantee improves with R; allow slack for boundary effects on
        # this small grid but insist the certified bound improves.
        assert r2.proven_ratio_bound <= r1.proven_ratio_bound + 1e-9
        assert ratio2 <= ratio1 * 1.5 + 1e-9


class TestLocalLP:
    def test_local_lp_over_full_agent_set_is_global_optimum(self, asymmetric_instance):
        view = frozenset(asymmetric_instance.agents)
        x = solve_local_lp(asymmetric_instance, view)
        assert asymmetric_instance.objective(
            asymmetric_instance.to_array(x)
        ) == pytest.approx(optimal_objective(asymmetric_instance))

    def test_local_lp_with_no_complete_beneficiary_returns_zero(self, asymmetric_instance):
        # A single-agent view never contains a full beneficiary support of
        # the other agent's party... here each party has a single supporting
        # agent, so restrict to an agent NOT supporting any complete party.
        from repro import MaxMinLPBuilder

        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "a", 1.0)
        builder.set_consumption("i", "b", 1.0)
        builder.set_benefit("k", "a", 1.0)
        builder.set_benefit("k", "b", 1.0)
        problem = builder.build()
        x = solve_local_lp(problem, frozenset({"a"}))
        assert x == {"a": 0.0}

    def test_local_lp_respects_clipped_constraints(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        view = H.ball(grid4x4.agents[0], 1)
        x = solve_local_lp(grid4x4, view)
        local = grid4x4.local_subproblem(view)
        assert local.is_feasible(local.to_array(x), tol=1e-7)
