"""Unit tests for the centralised optimum (LP reduction of Section 1.3)."""

from __future__ import annotations

import pytest

from repro import MaxMinLPBuilder, UnboundedError, optimal_objective, optimal_solution
from repro.lp import solve_max_min, solve_max_min_bisection


class TestKnownOptima:
    def test_tiny_instance(self, tiny_instance):
        result = optimal_solution(tiny_instance)
        assert result.objective == pytest.approx(1.0)
        assert tiny_instance.is_feasible(tiny_instance.to_array(result.x))

    def test_asymmetric_instance(self, asymmetric_instance):
        result = optimal_solution(asymmetric_instance)
        assert result.objective == pytest.approx(0.5)
        assert result.x["v1"] == pytest.approx(0.5, abs=1e-6)
        assert result.x["v2"] == pytest.approx(0.5, abs=1e-6)

    def test_cycle_instance(self, cycle8):
        assert optimal_objective(cycle8) == pytest.approx(1.5)

    def test_torus_symmetric_optimum(self, torus4x4):
        # On the 4x4 torus every resource has support size 5 (closed
        # neighbourhood), so x_v = 1/5 for all v is feasible and gives every
        # beneficiary exactly 1; by symmetry this is optimal.
        assert optimal_objective(torus4x4) == pytest.approx(1.0)

    def test_weighted_instance_optimum(self):
        # maximise min(2 x1, x2) s.t. x1 + x2 <= 1: optimum 2/3 at (1/3, 2/3).
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "v1", 1.0)
        builder.set_consumption("i", "v2", 1.0)
        builder.set_benefit("k1", "v1", 2.0)
        builder.set_benefit("k2", "v2", 1.0)
        problem = builder.build()
        result = optimal_solution(problem)
        assert result.objective == pytest.approx(2.0 / 3.0)

    def test_optimal_solution_is_feasible(self, grid4x4, random_instance):
        for problem in (grid4x4, random_instance):
            result = optimal_solution(problem)
            assert problem.is_feasible(problem.to_array(result.x), tol=1e-6)
            assert problem.objective(problem.to_array(result.x)) == pytest.approx(
                result.objective, rel=1e-6, abs=1e-9
            )


class TestBackendsAgreement:
    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "asymmetric_instance", "cycle8", "path6"]
    )
    def test_simplex_backend_matches_scipy(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        scipy_result = solve_max_min(problem, backend="scipy")
        simplex_result = solve_max_min(problem, backend="simplex")
        assert simplex_result.objective == pytest.approx(
            scipy_result.objective, rel=1e-6, abs=1e-9
        )
        assert problem.is_feasible(problem.to_array(simplex_result.x), tol=1e-6)

    @pytest.mark.parametrize("fixture", ["tiny_instance", "cycle8", "random_instance"])
    def test_bisection_matches_exact(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        exact = solve_max_min(problem)
        bisect = solve_max_min_bisection(problem, tol=1e-7)
        assert bisect.objective == pytest.approx(exact.objective, abs=1e-4)
        assert problem.is_feasible(problem.to_array(bisect.x), tol=1e-6)


class TestDegenerateCases:
    def test_no_beneficiaries_is_unbounded(self):
        from repro import MaxMinLP

        problem = MaxMinLP(["v"], {("i", "v"): 1.0}, {}, validate=False)
        with pytest.raises(UnboundedError):
            optimal_solution(problem)

    def test_unconstrained_agent_detected_by_bisection(self):
        from repro import MaxMinLP

        problem = MaxMinLP(["v"], {}, {("k", "v"): 1.0}, validate=False)
        with pytest.raises(UnboundedError):
            solve_max_min_bisection(problem)
