"""Unit tests for the max-min LP instance model (repro.core.problem)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import InvalidInstanceError, MaxMinLP, MaxMinLPBuilder


def build_small():
    builder = MaxMinLPBuilder()
    builder.set_consumption("i1", "a", 1.0)
    builder.set_consumption("i1", "b", 2.0)
    builder.set_consumption("i2", "b", 1.0)
    builder.set_consumption("i2", "c", 1.0)
    builder.set_benefit("k1", "a", 1.0)
    builder.set_benefit("k1", "b", 0.5)
    builder.set_benefit("k2", "c", 2.0)
    return builder.build()


class TestBuilder:
    def test_builds_expected_index_sets(self):
        problem = build_small()
        assert set(problem.agents) == {"a", "b", "c"}
        assert set(problem.resources) == {"i1", "i2"}
        assert set(problem.beneficiaries) == {"k1", "k2"}
        assert problem.n_agents == 3
        assert problem.n_resources == 2
        assert problem.n_beneficiaries == 2

    def test_builder_is_chainable_and_idempotent(self):
        builder = MaxMinLPBuilder()
        result = builder.add_agent("v").add_agent("v").add_resource("i").add_beneficiary("k")
        assert result is builder
        builder.set_consumption("i", "v", 1.0)
        builder.set_benefit("k", "v", 1.0)
        problem = builder.build()
        assert problem.n_agents == 1

    def test_zero_coefficient_is_dropped(self):
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "v", 1.0)
        builder.set_consumption("i", "w", 0.0)
        builder.set_benefit("k", "v", 1.0)
        problem = builder.build(validate=False)
        assert problem.consumption("i", "w") == 0.0
        assert "w" not in problem.resource_support("i")

    def test_setting_coefficient_to_zero_removes_it(self):
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "v", 2.0)
        builder.set_consumption("i", "v", 0.0)
        builder.set_consumption("i", "v", 3.0)
        builder.set_benefit("k", "v", 1.0)
        problem = builder.build()
        assert problem.consumption("i", "v") == 3.0

    def test_negative_coefficients_rejected(self):
        builder = MaxMinLPBuilder()
        with pytest.raises(InvalidInstanceError):
            builder.set_consumption("i", "v", -1.0)
        with pytest.raises(InvalidInstanceError):
            builder.set_benefit("k", "v", -0.5)

    def test_n_agents_property(self):
        builder = MaxMinLPBuilder()
        assert builder.n_agents == 0
        builder.add_agent("v")
        assert builder.n_agents == 1


class TestValidation:
    def test_agent_without_resource_rejected(self):
        with pytest.raises(InvalidInstanceError, match="consumes no resource"):
            MaxMinLP(["v"], {}, {("k", "v"): 1.0})

    def test_agent_without_resource_allowed_when_not_validating(self):
        problem = MaxMinLP(["v"], {}, {("k", "v"): 1.0}, validate=False)
        assert problem.agent_resources("v") == frozenset()

    def test_duplicate_agents_rejected(self):
        with pytest.raises(InvalidInstanceError, match="duplicate agent"):
            MaxMinLP(["v", "v"], {("i", "v"): 1.0}, {("k", "v"): 1.0})

    def test_unknown_agent_in_coefficients_rejected(self):
        with pytest.raises(InvalidInstanceError, match="unknown agent"):
            MaxMinLP(["v"], {("i", "w"): 1.0}, {})

    def test_unknown_resource_rejected_with_explicit_resources(self):
        with pytest.raises(InvalidInstanceError, match="unknown resource"):
            MaxMinLP(["v"], {("i", "v"): 1.0}, {}, resources=["other"])

    def test_negative_consumption_rejected(self):
        with pytest.raises(InvalidInstanceError, match="negative consumption"):
            MaxMinLP(["v"], {("i", "v"): -1.0}, {("k", "v"): 1.0})

    def test_empty_resource_support_rejected(self):
        with pytest.raises(InvalidInstanceError, match="empty support"):
            MaxMinLP(
                ["v"],
                {("i", "v"): 1.0},
                {("k", "v"): 1.0},
                resources=["i", "empty"],
            )


class TestSupportSets:
    def test_support_sets_match_definition(self):
        problem = build_small()
        assert problem.resource_support("i1") == frozenset({"a", "b"})
        assert problem.resource_support("i2") == frozenset({"b", "c"})
        assert problem.beneficiary_support("k1") == frozenset({"a", "b"})
        assert problem.beneficiary_support("k2") == frozenset({"c"})
        assert problem.agent_resources("b") == frozenset({"i1", "i2"})
        assert problem.agent_beneficiaries("a") == frozenset({"k1"})
        assert problem.agent_beneficiaries("c") == frozenset({"k2"})

    def test_degree_bounds(self):
        problem = build_small()
        bounds = problem.degree_bounds()
        assert bounds.max_resource_support == 2  # Δ_I^V
        assert bounds.max_beneficiary_support == 2  # Δ_K^V
        assert bounds.max_resources_per_agent == 2  # Δ_V^I
        assert bounds.max_beneficiaries_per_agent == 1  # Δ_V^K
        as_dict = bounds.as_dict()
        assert as_dict == {
            "delta_VI": 2,
            "delta_VK": 2,
            "delta_IV": 2,
            "delta_KV": 1,
        }


class TestMatricesAndEvaluation:
    def test_matrix_shapes_and_entries(self):
        problem = build_small()
        A = problem.A.toarray()
        C = problem.C.toarray()
        assert A.shape == (2, 3)
        assert C.shape == (2, 3)
        assert A[problem.resource_position("i1"), problem.agent_position("b")] == 2.0
        assert C[problem.beneficiary_position("k2"), problem.agent_position("c")] == 2.0

    def test_to_array_and_from_array_roundtrip(self):
        problem = build_small()
        x = {"a": 0.25, "b": 0.5, "c": 0.75}
        arr = problem.to_array(x)
        assert problem.from_array(arr) == x

    def test_to_array_missing_agents_default_to_zero(self):
        problem = build_small()
        arr = problem.to_array({"a": 1.0})
        assert arr[problem.agent_position("b")] == 0.0

    def test_to_array_unknown_agent_raises(self):
        problem = build_small()
        with pytest.raises(KeyError):
            problem.to_array({"nope": 1.0})

    def test_from_array_wrong_length_raises(self):
        problem = build_small()
        with pytest.raises(ValueError):
            problem.from_array([1.0, 2.0])

    def test_resource_usage_and_benefits(self):
        problem = build_small()
        x = {"a": 0.5, "b": 0.25, "c": 0.5}
        usage = problem.resource_usage(x)
        benefits = problem.benefits(x)
        assert usage[problem.resource_position("i1")] == pytest.approx(0.5 + 2 * 0.25)
        assert usage[problem.resource_position("i2")] == pytest.approx(0.25 + 0.5)
        assert benefits[problem.beneficiary_position("k1")] == pytest.approx(0.5 + 0.125)
        assert benefits[problem.beneficiary_position("k2")] == pytest.approx(1.0)

    def test_objective_is_minimum_benefit(self):
        problem = build_small()
        x = {"a": 0.5, "b": 0.25, "c": 0.5}
        assert problem.objective(x) == pytest.approx(0.625)

    def test_objective_without_beneficiaries_is_infinite(self):
        problem = MaxMinLP(["v"], {("i", "v"): 1.0}, {}, validate=False)
        assert problem.objective({"v": 1.0}) == float("inf")

    def test_feasibility_checks(self):
        problem = build_small()
        assert problem.is_feasible({"a": 0.0, "b": 0.0, "c": 0.0})
        assert problem.is_feasible({"a": 1.0, "b": 0.0, "c": 1.0})
        assert not problem.is_feasible({"a": 2.0, "b": 0.0, "c": 0.0})
        assert not problem.is_feasible({"a": -0.5, "b": 0.0, "c": 0.0})

    def test_violation_measures_worst_excess(self):
        problem = build_small()
        assert problem.violation({"a": 0.0, "b": 0.0, "c": 0.0}) == 0.0
        assert problem.violation({"a": 2.0, "b": 0.0, "c": 0.0}) == pytest.approx(1.0)
        assert problem.violation({"a": -0.25, "b": 0.0, "c": 0.0}) == pytest.approx(0.25)

    def test_accepts_numpy_vectors_directly(self):
        problem = build_small()
        vec = np.zeros(3)
        assert problem.is_feasible(vec)
        assert problem.objective(vec) == 0.0


class TestSubInstances:
    def test_induced_subinstance_keeps_only_contained_supports(self):
        problem = build_small()
        sub = problem.induced_subinstance({"a", "b"})
        assert set(sub.agents) == {"a", "b"}
        assert set(sub.resources) == {"i1"}
        assert set(sub.beneficiaries) == {"k1"}
        assert sub.consumption("i1", "b") == 2.0

    def test_induced_subinstance_unknown_agent_raises(self):
        problem = build_small()
        with pytest.raises(KeyError):
            problem.induced_subinstance({"a", "zzz"})

    def test_local_subproblem_clips_resources_keeps_full_beneficiaries(self):
        problem = build_small()
        local = problem.local_subproblem({"b", "c"})
        # Both resources touch the view, but i1 is clipped to {b}.
        assert set(local.resources) == {"i1", "i2"}
        assert local.resource_support("i1") == frozenset({"b"})
        assert local.resource_support("i2") == frozenset({"b", "c"})
        # k1's support {a, b} is not inside the view -> dropped; k2 kept.
        assert set(local.beneficiaries) == {"k2"}

    def test_local_subproblem_is_canonically_ordered(self):
        problem = build_small()
        local1 = problem.local_subproblem(["c", "b"])
        local2 = problem.local_subproblem(["b", "c"])
        assert local1.agents == local2.agents
        assert local1.resources == local2.resources
        assert local1.beneficiaries == local2.beneficiaries

    def test_subinstance_of_everything_is_equal(self):
        problem = build_small()
        sub = problem.induced_subinstance(problem.agents)
        assert sub == problem


class TestDunder:
    def test_equality_and_hash(self):
        a = build_small()
        b = build_small()
        assert a == b
        assert hash(a) == hash(b)
        assert a != "not a problem"

    def test_repr_contains_sizes(self):
        assert "n_agents=3" in repr(build_small())
