"""Unit tests for the safe algorithm (Section 4, eq. 2)."""

from __future__ import annotations

import pytest

from repro import (
    MaxMinLPBuilder,
    approximation_ratio,
    optimal_objective,
    safe_approximation_guarantee,
    safe_solution,
    safe_value,
)


class TestSafeValues:
    def test_hand_computed_values(self):
        # Resource "i" shared by two agents with different coefficients:
        # x_a = 1/(1*2) = 0.5, x_b = min(1/(2*2), 1/(1*1)) = 0.25.
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "a", 1.0)
        builder.set_consumption("i", "b", 2.0)
        builder.set_consumption("j", "b", 1.0)
        builder.set_benefit("k", "a", 1.0)
        builder.set_benefit("k", "b", 1.0)
        problem = builder.build()
        assert safe_value(problem, "a") == pytest.approx(0.5)
        assert safe_value(problem, "b") == pytest.approx(0.25)

    def test_agent_without_resources_gets_zero(self):
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "a", 1.0)
        builder.set_benefit("k", "a", 1.0)
        builder.set_benefit("k", "b", 1.0)
        problem = builder.build(validate=False)
        assert safe_value(problem, "b") == 0.0

    def test_guarantee_is_max_resource_support(self, grid4x4):
        assert safe_approximation_guarantee(grid4x4) == max(
            len(grid4x4.resource_support(i)) for i in grid4x4.resources
        )


class TestSafeFeasibilityAndRatio:
    @pytest.mark.parametrize(
        "fixture",
        ["tiny_instance", "cycle8", "path6", "grid4x4", "random_instance", "disk_instance"],
    )
    def test_safe_is_always_feasible(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        x = safe_solution(problem)
        assert problem.is_feasible(problem.to_array(x))

    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "cycle8", "path6", "grid4x4", "random_instance"]
    )
    def test_safe_ratio_within_guarantee(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        optimum = optimal_objective(problem)
        achieved = problem.objective(problem.to_array(safe_solution(problem)))
        ratio = approximation_ratio(optimum, achieved)
        assert ratio <= safe_approximation_guarantee(problem) + 1e-9

    def test_safe_is_optimal_on_symmetric_cycle(self, cycle8):
        # On the unit cycle every agent gets 1/2 and every beneficiary 3/2,
        # which is globally optimal.
        x = safe_solution(cycle8)
        assert all(value == pytest.approx(0.5) for value in x.values())
        assert cycle8.objective(cycle8.to_array(x)) == pytest.approx(1.5)
        assert optimal_objective(cycle8) == pytest.approx(1.5)

    def test_safe_ratio_can_approach_guarantee(self, lb_construction):
        # On the Section 4 construction the safe algorithm gives every agent
        # 1/(d+1); the optimum of the sub-instance is 1, so the ratio on the
        # full instance is at least d/2 -- well above 1.
        problem = lb_construction.problem
        x = safe_solution(problem)
        assert problem.is_feasible(problem.to_array(x))
        expected = 1.0 / (lb_construction.d + 1)
        assert all(value == pytest.approx(expected) for value in x.values())
