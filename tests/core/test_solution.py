"""Unit tests for solution evaluation and approximation ratios."""

from __future__ import annotations

import pytest

from repro import approximation_ratio, evaluate_solution, optimal_solution


class TestApproximationRatio:
    def test_basic_ratio(self):
        assert approximation_ratio(2.0, 1.0) == pytest.approx(2.0)
        assert approximation_ratio(1.0, 1.0) == pytest.approx(1.0)

    def test_zero_optimum_gives_ratio_one(self):
        assert approximation_ratio(0.0, 0.0) == 1.0

    def test_zero_achieved_with_positive_optimum_is_infinite(self):
        assert approximation_ratio(1.0, 0.0) == float("inf")

    def test_negative_values_rejected(self):
        with pytest.raises(ValueError):
            approximation_ratio(-1.0, 1.0)
        with pytest.raises(ValueError):
            approximation_ratio(1.0, -1.0)


class TestEvaluateSolution:
    def test_feasible_solution_report(self, tiny_instance):
        report = evaluate_solution(tiny_instance, {"v1": 0.5, "v2": 0.5})
        assert report.feasible
        assert report.objective == pytest.approx(1.0)
        assert report.violation == 0.0
        assert report.max_resource_usage == pytest.approx(1.0)
        assert report.min_benefit == pytest.approx(1.0)
        assert report.max_benefit == pytest.approx(1.0)
        assert report.ratio is None
        assert report.values == {"v1": 0.5, "v2": 0.5}

    def test_infeasible_solution_flagged(self, tiny_instance):
        report = evaluate_solution(tiny_instance, {"v1": 1.0, "v2": 0.5})
        assert not report.feasible
        assert report.violation == pytest.approx(0.5)

    def test_ratio_against_supplied_optimum(self, asymmetric_instance):
        opt = optimal_solution(asymmetric_instance).objective
        report = evaluate_solution(
            asymmetric_instance, {"v1": 0.25, "v2": 0.25}, optimum=opt
        )
        assert report.ratio == pytest.approx(2.0)

    def test_missing_agents_count_as_zero(self, asymmetric_instance):
        report = evaluate_solution(asymmetric_instance, {"v1": 0.5})
        assert report.objective == 0.0
        assert report.feasible

    def test_inconsistent_optimum_raises(self, tiny_instance):
        # A feasible solution cannot beat the claimed optimum; ratio < 1 must
        # be rejected as a programming error.
        with pytest.raises(ValueError, match="inconsistent"):
            evaluate_solution(tiny_instance, {"v1": 0.5, "v2": 0.5}, optimum=0.5)

    def test_ratio_for_optimal_solution_is_one(self, cycle8):
        opt = optimal_solution(cycle8)
        report = evaluate_solution(cycle8, opt.x, optimum=opt.objective)
        assert report.ratio == pytest.approx(1.0, abs=1e-6)
        assert report.feasible
