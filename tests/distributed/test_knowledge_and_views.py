"""Unit tests for startup knowledge records and locally assembled views."""

from __future__ import annotations

import pytest

from repro import communication_hypergraph
from repro.distributed import LocalKnowledge, LocalView, initial_knowledge


class TestInitialKnowledge:
    def test_every_agent_has_a_record(self, cycle8):
        knowledge = initial_knowledge(cycle8)
        assert set(knowledge) == set(cycle8.agents)

    def test_record_contents_match_problem(self, cycle8):
        knowledge = initial_knowledge(cycle8)
        H = communication_hypergraph(cycle8)
        for v in cycle8.agents:
            record = knowledge[v]
            assert record.agent == v
            assert record.consumption == {
                i: cycle8.consumption(i, v) for i in cycle8.agent_resources(v)
            }
            assert record.benefit == {
                k: cycle8.benefit(k, v) for k in cycle8.agent_beneficiaries(v)
            }
            assert record.neighbours == H.neighbours(v)

    def test_record_size_counts_fields(self):
        record = LocalKnowledge(
            agent="v",
            consumption={"i": 1.0, "j": 2.0},
            benefit={"k": 1.0},
            neighbours=frozenset({"a", "b", "c"}),
        )
        assert record.record_size == 1 + 2 + 1 + 3

    def test_accepts_prebuilt_hypergraph(self, cycle8):
        H = communication_hypergraph(cycle8, collaboration_oblivious=True)
        knowledge = initial_knowledge(cycle8, H)
        # In the oblivious graph each agent only sees resource-mates.
        for v in cycle8.agents:
            assert knowledge[v].neighbours == H.neighbours(v)


class TestLocalView:
    def make_view(self, problem, center, radius):
        H = communication_hypergraph(problem)
        knowledge = initial_knowledge(problem, H)
        ball = H.ball(center, radius)
        return LocalView(
            center=center, radius=radius, knowledge={v: knowledge[v] for v in ball}
        ), H

    def test_ball_reconstruction_matches_global(self, grid4x4):
        center = grid4x4.agents[5]
        view, H = self.make_view(grid4x4, center, 2)
        assert view.ball(center, 1) == H.ball(center, 1)
        assert view.ball(center, 2) == H.ball(center, 2)

    def test_ball_of_inner_agent_is_exact(self, grid4x4):
        center = grid4x4.agents[5]
        view, H = self.make_view(grid4x4, center, 3)
        for u in view.ball(center, 1):
            assert view.ball(u, 1) == H.ball(u, 1)

    def test_unknown_source_raises(self, grid4x4):
        view, _H = self.make_view(grid4x4, grid4x4.agents[0], 1)
        with pytest.raises(KeyError):
            view.distances(("not", "there"), cutoff=1)

    def test_window_problem_contains_known_coefficients(self, cycle8):
        center = cycle8.agents[0]
        view, H = self.make_view(cycle8, center, 2)
        window = view.window_problem()
        assert set(window.agents) == set(view.knowledge)
        for v in window.agents:
            assert window.agent_resources(v) == cycle8.agent_resources(v)
            for i in window.agent_resources(v):
                assert window.consumption(i, v) == cycle8.consumption(i, v)

    def test_window_problem_is_canonically_ordered(self, cycle8):
        center = cycle8.agents[0]
        view, _H = self.make_view(cycle8, center, 2)
        window = view.window_problem()
        assert list(window.agents) == sorted(window.agents, key=repr)
        assert list(window.resources) == sorted(window.resources, key=repr)

    def test_len_is_number_of_known_agents(self, cycle8):
        view, H = self.make_view(cycle8, cycle8.agents[0], 1)
        assert len(view) == len(H.ball(cycle8.agents[0], 1))
