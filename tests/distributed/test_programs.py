"""Integration tests: node programs reproduce the centralised algorithms."""

from __future__ import annotations

import pytest

from repro import (
    grid_instance,
    local_averaging_solution,
    path_instance,
    safe_solution,
    unit_disk_instance,
)
from repro.distributed import LocalAveragingProgram, SafeProgram, SynchronousSimulator


class TestSafeProgram:
    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "cycle8", "path6", "grid4x4", "random_instance"]
    )
    def test_matches_centralised_safe_algorithm(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        result = SynchronousSimulator(problem).run(SafeProgram())
        central = safe_solution(problem)
        for v in problem.agents:
            assert result.x[v] == pytest.approx(central[v], abs=1e-12)

    def test_uses_one_round(self, cycle8):
        result = SynchronousSimulator(cycle8).run(SafeProgram())
        assert result.rounds == 1
        assert result.feasible


class TestLocalAveragingProgram:
    @pytest.mark.parametrize("R", [1, 2])
    def test_matches_centralised_on_cycle(self, cycle8, R):
        result = SynchronousSimulator(cycle8).run(LocalAveragingProgram(R))
        central = local_averaging_solution(cycle8, R)
        for v in cycle8.agents:
            assert result.x[v] == pytest.approx(central.x[v], abs=1e-9)
        assert result.rounds == 2 * R + 1

    def test_matches_centralised_on_grid(self):
        problem = grid_instance((3, 4))
        result = SynchronousSimulator(problem).run(LocalAveragingProgram(1))
        central = local_averaging_solution(problem, 1)
        for v in problem.agents:
            assert result.x[v] == pytest.approx(central.x[v], abs=1e-9)

    def test_matches_centralised_on_path(self):
        problem = path_instance(7)
        result = SynchronousSimulator(problem).run(LocalAveragingProgram(2))
        central = local_averaging_solution(problem, 2)
        for v in problem.agents:
            assert result.x[v] == pytest.approx(central.x[v], abs=1e-9)

    def test_matches_centralised_on_disk_instance(self):
        problem = unit_disk_instance(16, radius=0.3, max_support=5, seed=4)
        result = SynchronousSimulator(problem).run(LocalAveragingProgram(1))
        central = local_averaging_solution(problem, 1)
        for v in problem.agents:
            assert result.x[v] == pytest.approx(central.x[v], abs=1e-9)

    def test_output_is_feasible(self, grid4x4):
        result = SynchronousSimulator(grid4x4).run(LocalAveragingProgram(1))
        assert result.feasible

    def test_rejects_invalid_radius(self):
        with pytest.raises(ValueError):
            LocalAveragingProgram(0)

    def test_message_volume_grows_with_radius(self, grid4x4):
        sim = SynchronousSimulator(grid4x4)
        small = sim.run(LocalAveragingProgram(1))
        large = sim.run(LocalAveragingProgram(2))
        assert large.total_payload > small.total_payload
        assert large.rounds > small.rounds
