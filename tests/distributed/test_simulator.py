"""Unit tests for the synchronous message-passing simulator."""

from __future__ import annotations

from typing import Any, Dict

import pytest

from repro import communication_hypergraph
from repro.distributed import (
    KnowledgeFloodingProgram,
    NodeProgram,
    SynchronousSimulator,
)


class CountingProgram(NodeProgram):
    """A minimal program: flood nothing, output the agent's degree."""

    @property
    def rounds(self) -> int:
        return 0

    def initialise(self, knowledge):
        return {"degree": len(knowledge.neighbours)}

    def outgoing(self, state, round_index):  # pragma: no cover - zero rounds
        return None

    def receive(self, state, round_index, inbox):  # pragma: no cover
        pass

    def finalise(self, state):
        return float(state["degree"])


class EchoProgram(NodeProgram):
    """One round: every agent broadcasts 1.0 and outputs the sum received."""

    @property
    def rounds(self) -> int:
        return 1

    def initialise(self, knowledge):
        return {"received": 0.0}

    def outgoing(self, state, round_index):
        return 1.0

    def receive(self, state, round_index, inbox: Dict[Any, Any]):
        state["received"] += sum(inbox.values())

    def finalise(self, state):
        return state["received"]


class GatherOnlyProgram(KnowledgeFloodingProgram):
    """Flooding program whose output is the size of the assembled view."""

    def compute(self, view):
        return float(len(view))


class TestSimulatorMechanics:
    def test_zero_round_program(self, cycle8):
        sim = SynchronousSimulator(cycle8)
        result = sim.run(CountingProgram())
        H = communication_hypergraph(cycle8)
        assert result.rounds == 0
        assert result.messages_sent == 0
        for v in cycle8.agents:
            assert result.x[v] == H.degree(v)

    def test_message_accounting_for_broadcast(self, cycle8):
        sim = SynchronousSimulator(cycle8)
        result = sim.run(EchoProgram())
        H = communication_hypergraph(cycle8)
        total_degree = sum(H.degree(v) for v in cycle8.agents)
        assert result.messages_sent == total_degree
        # Every agent receives one unit from each neighbour.
        for v in cycle8.agents:
            assert result.x[v] == H.degree(v)

    def test_flooding_gathers_exactly_the_ball(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        sim = SynchronousSimulator(grid4x4, hypergraph=H)
        for radius in (0, 1, 2):
            result = sim.run(GatherOnlyProgram(radius))
            for v in grid4x4.agents:
                assert result.x[v] == len(H.ball(v, radius))

    def test_result_reports_objective_and_feasibility(self, cycle8):
        sim = SynchronousSimulator(cycle8)
        result = sim.run(CountingProgram())
        # Every agent outputs its degree (4), which overloads the unit edges.
        assert not result.feasible
        assert result.objective == pytest.approx(12.0)

    def test_collaboration_oblivious_graph_is_used(self, cycle8):
        sim = SynchronousSimulator(cycle8, collaboration_oblivious=True)
        result = sim.run(CountingProgram())
        # Only the edge resources remain: degree 2 everywhere.
        assert all(value == 2.0 for value in result.x.values())

    def test_deterministic_across_runs(self, grid4x4):
        sim = SynchronousSimulator(grid4x4)
        a = sim.run(GatherOnlyProgram(2))
        b = sim.run(GatherOnlyProgram(2))
        assert a.x == b.x
        assert a.messages_sent == b.messages_sent

    def test_flooding_program_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            GatherOnlyProgram(-1)

    def test_payload_statistics_present(self, cycle8):
        sim = SynchronousSimulator(cycle8)
        result = sim.run(GatherOnlyProgram(2))
        assert result.total_payload > 0
        assert result.max_message_payload > 0
        assert result.average_payload_per_message > 0
