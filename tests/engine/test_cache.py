"""Unit tests for the two-tier content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestMemoryTier:
    def test_miss_then_hit_round_trip(self):
        cache = ResultCache()
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        cache.put(KEY, {"value": 1.5})
        assert cache.get(KEY) == {"value": 1.5}
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_contains_and_len(self):
        cache = ResultCache()
        assert KEY not in cache
        cache.put(KEY, [1, 2])
        assert KEY in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a" * 64, 1)
        cache.put("b" * 64, 2)
        cache.get("a" * 64)  # refresh "a"; "b" becomes LRU
        cache.put("c" * 64, 3)
        assert "b" * 64 not in cache
        assert cache.get("a" * 64) == 1
        assert cache.get("c" * 64) == 3
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = ResultCache()
        cache.put(KEY, 1)
        assert cache.invalidate(KEY)
        assert cache.get(KEY) is None
        assert not cache.invalidate(KEY)
        assert cache.stats.invalidations == 1

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_memory_entries=0)


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        writer = ResultCache(directory=tmp_path)
        writer.put(KEY, {"objective": 2.0, "x": [{"v": "v1", "x": 1.0}]})
        # A brand-new cache object (fresh process in spirit) sees the entry.
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY) == {"objective": 2.0, "x": [{"v": "v1", "x": 1.0}]}
        assert reader.stats.disk_hits == 1
        # The disk hit was promoted into the memory tier.
        assert len(reader) == 1

    def test_content_addressed_layout(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["key"] == KEY

    def test_non_finite_floats_round_trip(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, {"objective": float("inf")})
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY)["objective"] == float("inf")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        (tmp_path / KEY[:2] / f"{KEY}.json").write_text("{not json")
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY) is None
        assert reader.stats.misses == 1

    def test_invalidate_removes_the_file(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        assert cache.invalidate(KEY)
        assert not (tmp_path / KEY[:2] / f"{KEY}.json").exists()
        assert ResultCache(directory=tmp_path).get(KEY) is None

    def test_clear_and_introspection(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        cache.put(OTHER, 2)
        assert cache.disk_entries() == 2
        assert cache.disk_bytes() > 0
        cache.clear(disk=True)
        assert cache.disk_entries() == 0
        assert len(cache) == 0

    def test_clear_memory_only_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        cache.clear(disk=False)
        assert len(cache) == 0
        assert cache.disk_entries() == 1
        assert cache.get(KEY) == 1  # re-served from disk

    def test_stats_as_dict_keys(self):
        stats = ResultCache().stats
        assert set(stats.as_dict()) == {
            "hits",
            "disk_hits",
            "misses",
            "puts",
            "evictions",
            "disk_evictions",
            "invalidations",
            "quarantined",
            "write_errors",
        }


class TestDiskEviction:
    """The disk tier's max-bytes cap and the explicit prune policy."""

    @staticmethod
    def _age_entries(cache, tmp_path, keys):
        """Give entries strictly increasing mtimes (filesystem-tick safe)."""
        import os

        for offset, key in enumerate(keys):
            path = tmp_path / key[:2] / f"{key}.json"
            os.utime(path, (1_000_000 + offset, 1_000_000 + offset))

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError, match="max_disk_bytes"):
            ResultCache(max_disk_bytes=-1)

    def test_cap_evicts_oldest_entries_first(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for key in keys:
            cache.put(key, {"payload": key})
        self._age_entries(cache, tmp_path, keys)
        entry_bytes = cache.disk_bytes() // 3

        capped = ResultCache(directory=tmp_path, max_disk_bytes=2 * entry_bytes + 2)
        capped.put("d" * 64, {"payload": "d" * 64})
        # The two oldest entries fall out; the newest survive.
        remaining = {path.stem for path in tmp_path.glob("??/*.json")}
        assert "a" * 64 not in remaining
        assert "d" * 64 in remaining
        assert capped.disk_bytes() <= 2 * entry_bytes + 2
        assert capped.stats.disk_evictions >= 2

    def test_prune_method_reports_and_updates_stats(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        keys = ["a" * 64, "b" * 64, "c" * 64]
        for key in keys:
            cache.put(key, {"payload": key})
        self._age_entries(cache, tmp_path, keys)
        total = cache.disk_bytes()
        outcome = cache.prune(total // 3)
        assert outcome["removed_entries"] == 2
        assert outcome["removed_bytes"] > 0
        assert outcome["remaining_bytes"] <= total // 3
        assert cache.stats.disk_evictions == 2
        assert cache.disk_entries() == 1

    def test_prune_to_zero_empties_the_tier(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        cache.put(OTHER, 2)
        outcome = cache.prune(0)
        assert outcome["removed_entries"] == 2
        assert cache.disk_entries() == 0

    def test_prune_without_disk_tier_is_a_noop(self):
        cache = ResultCache()
        assert cache.prune(0) == {
            "removed_entries": 0,
            "removed_bytes": 0,
            "remaining_bytes": 0,
        }

    def test_prune_without_bound_is_a_noop(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        outcome = cache.prune()
        assert outcome["removed_entries"] == 0
        assert cache.disk_entries() == 1

    def test_evicted_entries_are_cache_misses_not_errors(self, tmp_path):
        cache = ResultCache(
            directory=tmp_path, max_disk_bytes=60, max_memory_entries=1
        )
        cache.put(KEY, {"v": 1})
        cache.put(OTHER, {"v": 2})  # evicts KEY from both tiers
        assert cache.get(KEY) is None
        assert cache.get(OTHER) == {"v": 2}


class TestConcurrency:
    """The cache under a worker pool: torn values and counter drift are bugs."""

    def _stress(self, cache, *, n_threads=8, n_ops=200, n_keys=48):
        import random
        import threading

        keys = [f"{i:02x}" * 32 for i in range(n_keys)]
        problems = []
        counts = {"gets": 0, "puts": 0}
        count_lock = threading.Lock()

        def worker(seed: int) -> None:
            rng = random.Random(seed)
            gets = puts = 0
            try:
                for _ in range(n_ops):
                    key = rng.choice(keys)
                    if rng.random() < 0.5:
                        cache.put(key, {"payload": key, "pad": "x" * 200})
                        puts += 1
                    else:
                        value = cache.get(key)
                        gets += 1
                        # Values are atomic: present and intact, or absent.
                        if value is not None and value.get("payload") != key:
                            problems.append(f"torn read for {key[:8]}")
            except Exception as exc:  # noqa: BLE001 - surfaced to the test
                problems.append(f"worker {seed} raised {exc!r}")
            with count_lock:
                counts["gets"] += gets
                counts["puts"] += puts

        threads = [
            threading.Thread(target=worker, args=(seed,))
            for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not problems, problems
        return counts

    def test_threaded_stress_memory_only(self):
        cache = ResultCache(max_memory_entries=32)
        counts = self._stress(cache)
        stats = cache.stats
        # Counters account for every operation exactly once.
        assert stats.hits + stats.misses == counts["gets"]
        assert stats.puts == counts["puts"]
        assert len(cache) <= 32

    def test_threaded_stress_with_capped_disk_tier(self, tmp_path):
        cap = 20_000
        cache = ResultCache(
            max_memory_entries=16, directory=tmp_path, max_disk_bytes=cap
        )
        counts = self._stress(cache)
        stats = cache.stats
        assert stats.hits + stats.misses == counts["gets"]
        assert stats.puts == counts["puts"]
        assert stats.disk_hits <= stats.hits
        assert len(cache) <= 16
        # The cap is enforced (a write racing the final prune scan can
        # overshoot by at most one entry's worth of bytes).
        entry_bytes = 300
        assert cache.disk_bytes() <= cap + entry_bytes
        # Every surviving disk entry is readable and intact.
        for path in tmp_path.glob("??/*.json"):
            data = json.loads(path.read_text())
            assert data["value"]["payload"] == data["key"]

    def test_threaded_eviction_counters_are_consistent(self, tmp_path):
        """puts == survivors + memory evictions, per tier bookkeeping."""
        cache = ResultCache(max_memory_entries=4, directory=tmp_path)
        self._stress(cache, n_threads=6, n_ops=100, n_keys=12)
        stats = cache.stats
        assert len(cache) <= 4
        # Memory-tier conservation: entries enter the LRU via put or via
        # disk-hit promotion, and each arrival evicts at most one resident.
        assert stats.evictions <= stats.puts + stats.disk_hits
        assert stats.evictions >= 0
        # No disk cap was configured, so nothing may have been disk-evicted.
        assert stats.disk_evictions == 0
        assert cache.disk_entries() == 12
