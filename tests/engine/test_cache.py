"""Unit tests for the two-tier content-addressed result cache."""

from __future__ import annotations

import json

import pytest

from repro.engine import ResultCache

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


class TestMemoryTier:
    def test_miss_then_hit_round_trip(self):
        cache = ResultCache()
        assert cache.get(KEY) is None
        assert cache.stats.misses == 1
        cache.put(KEY, {"value": 1.5})
        assert cache.get(KEY) == {"value": 1.5}
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_contains_and_len(self):
        cache = ResultCache()
        assert KEY not in cache
        cache.put(KEY, [1, 2])
        assert KEY in cache
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a" * 64, 1)
        cache.put("b" * 64, 2)
        cache.get("a" * 64)  # refresh "a"; "b" becomes LRU
        cache.put("c" * 64, 3)
        assert "b" * 64 not in cache
        assert cache.get("a" * 64) == 1
        assert cache.get("c" * 64) == 3
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = ResultCache()
        cache.put(KEY, 1)
        assert cache.invalidate(KEY)
        assert cache.get(KEY) is None
        assert not cache.invalidate(KEY)
        assert cache.stats.invalidations == 1

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError):
            ResultCache(max_memory_entries=0)


class TestDiskTier:
    def test_round_trip_through_disk(self, tmp_path):
        writer = ResultCache(directory=tmp_path)
        writer.put(KEY, {"objective": 2.0, "x": [{"v": "v1", "x": 1.0}]})
        # A brand-new cache object (fresh process in spirit) sees the entry.
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY) == {"objective": 2.0, "x": [{"v": "v1", "x": 1.0}]}
        assert reader.stats.disk_hits == 1
        # The disk hit was promoted into the memory tier.
        assert len(reader) == 1

    def test_content_addressed_layout(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        path = tmp_path / KEY[:2] / f"{KEY}.json"
        assert path.is_file()
        assert json.loads(path.read_text())["key"] == KEY

    def test_non_finite_floats_round_trip(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, {"objective": float("inf")})
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY)["objective"] == float("inf")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        (tmp_path / KEY[:2] / f"{KEY}.json").write_text("{not json")
        reader = ResultCache(directory=tmp_path)
        assert reader.get(KEY) is None
        assert reader.stats.misses == 1

    def test_invalidate_removes_the_file(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        assert cache.invalidate(KEY)
        assert not (tmp_path / KEY[:2] / f"{KEY}.json").exists()
        assert ResultCache(directory=tmp_path).get(KEY) is None

    def test_clear_and_introspection(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        cache.put(OTHER, 2)
        assert cache.disk_entries() == 2
        assert cache.disk_bytes() > 0
        cache.clear(disk=True)
        assert cache.disk_entries() == 0
        assert len(cache) == 0

    def test_clear_memory_only_keeps_disk(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        cache.clear(disk=False)
        assert len(cache) == 0
        assert cache.disk_entries() == 1
        assert cache.get(KEY) == 1  # re-served from disk

    def test_stats_as_dict_keys(self):
        stats = ResultCache().stats
        assert set(stats.as_dict()) == {
            "hits",
            "disk_hits",
            "misses",
            "puts",
            "evictions",
            "invalidations",
        }
