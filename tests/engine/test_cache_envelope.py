"""Checksummed disk entries, quarantine, tmp hygiene and fsck."""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine import ResultCache
from repro.engine.fingerprint import fingerprint_data

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def entry_path(tmp_path, key):
    return tmp_path / key[:2] / f"{key}.json"


class TestEnvelope:
    def test_disk_entry_carries_checksum(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, {"objective": 1.5})
        data = json.loads(entry_path(tmp_path, KEY).read_text())
        assert set(data) == {"key", "sha256", "value"}
        assert data["key"] == KEY
        assert data["sha256"] == fingerprint_data({"objective": 1.5})

    def test_round_trip_promotes_disk_to_memory(self, tmp_path):
        ResultCache(directory=tmp_path).put(KEY, [1, 2.5])
        cache = ResultCache(directory=tmp_path)
        value, tier = cache.get_with_tier(KEY)
        assert value == [1, 2.5]
        assert tier == "disk"
        _, tier = cache.get_with_tier(KEY)
        assert tier == "memory"

    def test_nonfinite_floats_round_trip(self, tmp_path):
        ResultCache(directory=tmp_path).put(KEY, {"objective": float("inf")})
        assert ResultCache(directory=tmp_path).get(KEY) == {
            "objective": float("inf")
        }


class TestChecksumValidation:
    def test_bit_flip_is_detected_and_quarantined(self, tmp_path):
        ResultCache(directory=tmp_path).put(KEY, {"objective": 1.5})
        path = entry_path(tmp_path, KEY)
        # Flip one digit inside the value: still perfectly parseable JSON.
        path.write_text(path.read_text().replace("1.5", "2.5"))

        cache = ResultCache(directory=tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.quarantined == 1
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # The quarantined entry is a miss forever after, not an error.
        assert cache.get(KEY) is None

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path):
        path = entry_path(tmp_path, KEY)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": KEY, "value": 41}))
        cache = ResultCache(directory=tmp_path)
        assert cache.get(KEY) == 41
        assert cache.stats.quarantined == 0

    def test_wrong_key_envelope_quarantined(self, tmp_path):
        path = entry_path(tmp_path, KEY)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps(
                {"key": OTHER, "sha256": fingerprint_data(7), "value": 7}
            )
        )
        cache = ResultCache(directory=tmp_path)
        assert cache.get(KEY) is None
        assert cache.stats.quarantined == 1

    def test_corrupt_sidecars_count_toward_disk_bytes(self, tmp_path):
        ResultCache(directory=tmp_path).put(KEY, {"objective": 1.5})
        clean_bytes = ResultCache(directory=tmp_path).disk_bytes()
        path = entry_path(tmp_path, KEY)
        path.write_text(path.read_text().replace("1.5", "9.5"))
        cache = ResultCache(directory=tmp_path)  # cold memory: forces disk read
        cache.get(KEY)  # quarantines
        assert cache.disk_entries() == 0
        assert cache.disk_bytes() >= clean_bytes  # sidecar still accounted

    def test_prune_reclaims_corrupt_sidecars(self, tmp_path):
        ResultCache(directory=tmp_path).put(KEY, {"objective": 1.5})
        path = entry_path(tmp_path, KEY)
        path.write_text(path.read_text().replace("1.5", "9.5"))
        cache = ResultCache(directory=tmp_path)
        cache.get(KEY)
        outcome = cache.prune(0)
        assert outcome["remaining_bytes"] == 0
        assert not path.with_suffix(".corrupt").exists()


class TestQuarantineKey:
    def test_quarantine_key_evicts_both_tiers(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, 1)
        assert cache.quarantine_key(KEY) is True
        assert cache.get(KEY) is None
        assert entry_path(tmp_path, KEY).with_suffix(".corrupt").exists()

    def test_quarantine_key_absent_entry(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        assert cache.quarantine_key(KEY) is False

    def test_quarantine_key_memory_only_cache(self):
        cache = ResultCache()
        cache.put(KEY, 1)
        assert cache.quarantine_key(KEY) is False
        assert cache.get(KEY) is None  # still evicted from memory


class TestTmpHygiene:
    def test_startup_sweeps_stale_tmp(self, tmp_path):
        shard = tmp_path / KEY[:2]
        shard.mkdir(parents=True)
        stale = shard / "deadbeef.tmp"
        stale.write_text("half a write")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        fresh = shard / "cafef00d.tmp"
        fresh.write_text("live writer")

        ResultCache(directory=tmp_path)
        assert not stale.exists(), "stale tmp survived the startup sweep"
        assert fresh.exists(), "a live writer's tmp was swept"

    def test_explicit_sweep_removes_everything(self, tmp_path):
        shard = tmp_path / KEY[:2]
        shard.mkdir(parents=True)
        (shard / "x.tmp").write_text("x")
        cache = ResultCache(directory=tmp_path)
        assert cache.sweep_tmp() == 1


class TestFsck:
    def seed(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(KEY, {"objective": 1.5})
        cache.put(OTHER, {"objective": 2.0})
        # one legacy (pre-envelope) entry
        legacy_key = "ef" + "2" * 62
        path = entry_path(tmp_path, legacy_key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"key": legacy_key, "value": 3}))
        return cache

    def test_clean_tier(self, tmp_path):
        cache = self.seed(tmp_path)
        report = cache.fsck()
        assert report["scanned"] == 3
        assert report["ok"] == 3
        assert report["legacy"] == 1
        assert report["damaged"] == 0

    def test_damage_detected_readonly_then_repaired(self, tmp_path):
        cache = self.seed(tmp_path)
        path = entry_path(tmp_path, KEY)
        path.write_text(path.read_text().replace("1.5", "7.5"))

        report = cache.fsck()
        assert report["damaged"] == 1
        assert report["quarantined"] == 0
        assert path.exists(), "read-only fsck must not modify the tier"

        report = cache.fsck(repair=True)
        assert report["quarantined"] == 1
        assert not path.exists()
        assert cache.fsck()["damaged"] == 0

    def test_certify_hook_flags_semantic_damage(self, tmp_path):
        cache = self.seed(tmp_path)

        def certify(key, value):
            # Declare every entry whose objective is 2.0 semantically wrong.
            return not (isinstance(value, dict) and value.get("objective") == 2.0)

        report = cache.fsck(certify=certify)
        assert report["damaged"] == 1

    def test_certify_hook_exception_counts_as_damage(self, tmp_path):
        cache = self.seed(tmp_path)

        def certify(key, value):
            raise RuntimeError("boom")

        assert cache.fsck(certify=certify)["damaged"] == 3

    def test_repair_sweeps_tmp_and_counts_sidecars(self, tmp_path):
        cache = self.seed(tmp_path)
        (tmp_path / KEY[:2] / "orphan.tmp").write_text("x")
        path = entry_path(tmp_path, KEY)
        path.write_text(path.read_text().replace("1.5", "7.5"))
        report = cache.fsck(repair=True)
        assert report["tmp_swept"] == 1
        assert report["corrupt_sidecars"] == 1
