"""Tests for the engine's canonical local-LP path (dedup across isomorphs)."""

from __future__ import annotations

import pytest

from repro import (
    BatchSolver,
    ResultCache,
    grid_instance,
    local_averaging_solution,
)
from repro.engine.fingerprint import (
    fingerprint_canonical_request,
    fingerprint_request,
)
from repro.hypergraph.communication import communication_hypergraph


class TestCanonicalFingerprints:
    def test_canonical_request_depends_on_key_and_backend(self):
        base = fingerprint_canonical_request("a" * 64, backend="scipy")
        assert len(base) == 64
        assert fingerprint_canonical_request("b" * 64, backend="scipy") != base
        assert fingerprint_canonical_request("a" * 64, backend="simplex") != base

    def test_disjoint_from_raw_local_lp_requests(self, tiny_instance):
        from repro import fingerprint_instance

        raw_key = fingerprint_instance(tiny_instance)
        raw = fingerprint_request(
            None, "local_lp", backend="scipy", instance_fingerprint=raw_key
        )
        canonical = fingerprint_canonical_request(raw_key, backend="scipy")
        assert raw != canonical


class TestCanonicalLocalSolves:
    def test_isomorphic_subproblems_collapse_to_one_solve(self):
        # Distinct agents of a torus have literally different subproblems
        # (different identifiers) but isomorphic structure: the canonical
        # engine path solves exactly one of them.
        problem = grid_instance((5, 5), torus=True)
        H = communication_hypergraph(problem)
        subs = [problem.local_subproblem(H.ball(u, 1)) for u in problem.agents]
        engine = BatchSolver(cache=ResultCache())
        outcomes = engine.solve_subproblems(subs)
        assert engine.stats.executed == 1
        assert len(outcomes) == len(subs)
        objectives = {outcome.objective for outcome in outcomes}
        assert len(objectives) == 1

    def test_non_canonical_engine_reproduces_legacy_behaviour(self):
        problem = grid_instance((4, 4), torus=True)
        H = communication_hypergraph(problem)
        subs = [problem.local_subproblem(H.ball(u, 1)) for u in problem.agents]
        legacy = BatchSolver(canonical_local=False)
        outcomes = legacy.solve_subproblems(subs)
        # No canonicalisation: every distinct-identifier subproblem solves.
        assert legacy.stats.executed == len(subs)
        canonical = BatchSolver().solve_subproblems(subs)
        for legacy_out, canon_out in zip(outcomes, canonical):
            assert legacy_out.objective == pytest.approx(
                canon_out.objective, abs=1e-9
            )

    def test_pull_back_keys_match_subproblem_agents(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        view = H.ball(grid4x4.agents[0], 1)
        sub = grid4x4.local_subproblem(view)
        (outcome,) = BatchSolver().solve_subproblems([sub])
        assert set(outcome.x) == set(sub.agents)
        assert sub.is_feasible(sub.to_array(outcome.x), tol=1e-7)

    def test_warm_cache_bit_identical_with_canonical_keys(self, tmp_path):
        problem = grid_instance((5, 5), torus=True)
        cold_engine = BatchSolver(cache=ResultCache(directory=tmp_path))
        cold = local_averaging_solution(problem, 1, engine=cold_engine)
        warm_engine = BatchSolver(cache=ResultCache(directory=tmp_path))
        warm = local_averaging_solution(problem, 1, engine=warm_engine)
        assert warm_engine.stats.executed == 0
        assert warm.x == cold.x
        assert warm.local_objectives == cold.local_objectives

    def test_disk_cache_hits_across_isomorphic_instances(self, tmp_path):
        """A small torus warms the cache for a larger torus — the tentpole's
        cross-instance cache-sharing acceptance scenario.  (The smaller
        torus must be at least 7 wide: an R=1 local LP reaches L1-distance
        3, which would wrap on anything narrower and change the view's
        isomorphism class.)"""
        small = grid_instance((7, 7), torus=True)
        engine_small = BatchSolver(cache=ResultCache(directory=tmp_path))
        local_averaging_solution(small, 1, engine=engine_small)
        assert engine_small.stats.executed >= 1

        large = grid_instance((10, 10), torus=True)
        engine_large = BatchSolver(cache=ResultCache(directory=tmp_path))
        local_averaging_solution(large, 1, engine=engine_large)
        # Every local LP of the larger torus is isomorphic to the smaller
        # torus's view: zero new solves, all answered from the disk tier.
        assert engine_large.stats.executed == 0
        assert engine_large.cache.stats.disk_hits >= 1

    def test_share_orbits_and_engine_path_share_cache_entries(self):
        problem = grid_instance((5, 5), torus=True)
        cache = ResultCache()
        engine = BatchSolver(cache=cache)
        local_averaging_solution(problem, 1, engine=engine, share_orbits=True)
        executed_after_orbit_run = engine.stats.executed
        local_averaging_solution(problem, 1, engine=engine, share_orbits=False)
        # The per-agent path found every canonical LP already cached.
        assert engine.stats.executed == executed_after_orbit_run
