"""BatchSolver ``verify=`` policy: certify cached reads and fresh solves."""

from __future__ import annotations

import json

import pytest

from repro.engine import VERIFY_MODES, BatchSolver, ResultCache
from repro.generators import cycle_instance, path_instance


def problems():
    return [cycle_instance(8), path_instance(9)]


def corrupt_disk_entries(directory, *, bump=0.25):
    """Perturb every disk entry's objective, keeping it checksum-valid.

    The rewritten entry drops the ``sha256`` field, so it reads as a
    legitimate legacy (pre-envelope) entry: the checksum layer waves it
    through and only a solution certificate can tell it is wrong.
    """
    n = 0
    for path in directory.rglob("*.json"):
        data = json.loads(path.read_text())
        value = data["value"]
        value["objective"] = value["objective"] + bump
        path.write_text(json.dumps({"key": data["key"], "value": value}))
        n += 1
    return n


class TestConstruction:
    def test_modes(self):
        assert VERIFY_MODES == ("off", "cached", "all")
        for mode in VERIFY_MODES:
            assert BatchSolver(verify=mode).verify == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown verify mode"):
            BatchSolver(verify="paranoid")


class TestCachedMode:
    def test_corrupted_disk_entry_requeued_and_resolved(self, tmp_path):
        seed = BatchSolver(cache=ResultCache(directory=tmp_path))
        expected = [r.objective for r in seed.solve_maxmin_batch(problems())]
        assert corrupt_disk_entries(tmp_path) == 2

        engine = BatchSolver(
            cache=ResultCache(directory=tmp_path), verify="cached"
        )
        with pytest.warns(RuntimeWarning, match="failed its solution"):
            results = engine.solve_maxmin_batch(problems())

        assert [r.objective for r in results] == pytest.approx(expected)
        assert engine.stats.verify_failed == 2
        assert engine.stats.verify_requeued == 2
        assert engine.stats.executed == 2, "corrupt hits must be re-solved"
        # The poisoned entries were quarantined, not left to bite again.
        assert engine.cache.stats.quarantined == 2
        assert list(tmp_path.rglob("*.corrupt"))

    def test_clean_disk_entries_pass(self, tmp_path):
        BatchSolver(cache=ResultCache(directory=tmp_path)).solve_maxmin_batch(
            problems()
        )
        engine = BatchSolver(
            cache=ResultCache(directory=tmp_path), verify="cached"
        )
        engine.solve_maxmin_batch(problems())
        assert engine.stats.verify_passed == 2
        assert engine.stats.verify_failed == 0
        assert engine.stats.executed == 0

    def test_memory_hits_skip_certification(self):
        engine = BatchSolver(cache=ResultCache(), verify="cached")
        engine.solve_maxmin_batch(problems())
        engine.solve_maxmin_batch(problems())  # pure memory hits
        assert engine.stats.verify_passed == 0
        assert engine.stats.verify_failed == 0

    def test_fresh_solves_not_certified(self):
        engine = BatchSolver(cache=ResultCache(), verify="cached")
        engine.solve_maxmin_batch(problems())
        assert engine.stats.verify_passed == 0


class TestAllMode:
    def test_fresh_solves_certified(self):
        engine = BatchSolver(cache=ResultCache(), verify="all")
        engine.solve_maxmin_batch(problems())
        assert engine.stats.verify_passed == 2
        assert engine.stats.verify_failed == 0

    def test_memory_hits_certified_too(self):
        engine = BatchSolver(cache=ResultCache(), verify="all")
        engine.solve_maxmin_batch(problems())
        engine.solve_maxmin_batch(problems())
        assert engine.stats.verify_passed == 4


class TestOffMode:
    def test_corruption_sails_through_unverified(self, tmp_path):
        seed = BatchSolver(cache=ResultCache(directory=tmp_path))
        clean = [r.objective for r in seed.solve_maxmin_batch(problems())]
        corrupt_disk_entries(tmp_path)

        engine = BatchSolver(cache=ResultCache(directory=tmp_path))
        results = engine.solve_maxmin_batch(problems())
        # Documents the threat verify= exists to close: silent corruption
        # is served verbatim when verification is off.
        assert [r.objective for r in results] == pytest.approx(
            [c + 0.25 for c in clean]
        )
        assert engine.stats.verify_failed == 0
        assert engine.stats.executed == 0
