"""Tests for the batch solver: equality across modes, caching, job records."""

from __future__ import annotations

import math

import pytest

from repro import (
    BatchSolver,
    ResultCache,
    RunRegistry,
    cycle_instance,
    grid_instance,
    local_averaging_solution,
    random_bounded_degree_instance,
)
from repro.analysis import radius_sweep, safe_ratio_sweep
from repro.core.baselines import single_shot_local_solution, unshrunk_averaging_solution


def serial_engine(**kwargs):
    return BatchSolver(mode="serial", **kwargs)


class TestConstruction:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown execution mode"):
            BatchSolver(mode="fleet")

    def test_rejects_non_positive_workers(self):
        with pytest.raises(ValueError):
            BatchSolver(mode="thread", max_workers=0)


class TestParallelSerialEquality:
    """BatchSolver must be a pure performance feature: numbers never change."""

    @pytest.mark.parametrize(
        "problem_fixture", ["grid4x4", "torus4x4", "random_instance"]
    )
    @pytest.mark.parametrize("R", [1, 2])
    def test_local_averaging_bit_identical(self, problem_fixture, R, request):
        problem = request.getfixturevalue(problem_fixture)
        serial = local_averaging_solution(problem, R, engine=serial_engine())
        pooled = local_averaging_solution(
            problem, R, engine=BatchSolver(mode="thread", max_workers=4)
        )
        assert pooled.objective == serial.objective
        assert pooled.x == serial.x
        assert pooled.local_objectives == serial.local_objectives

    def test_process_mode_bit_identical(self, cycle8):
        serial = local_averaging_solution(cycle8, 1, engine=serial_engine())
        pooled = local_averaging_solution(
            cycle8, 1, engine=BatchSolver(mode="process", max_workers=2)
        )
        assert pooled.objective == serial.objective
        assert pooled.x == serial.x

    def test_cached_warm_run_bit_identical(self, grid4x4):
        engine = serial_engine(cache=ResultCache())
        cold = local_averaging_solution(grid4x4, 2, engine=engine)
        warm = local_averaging_solution(grid4x4, 2, engine=engine)
        assert warm.objective == cold.objective
        assert warm.x == cold.x
        assert engine.stats.executed < engine.stats.units

    def test_disk_cache_round_trip_bit_identical(self, tmp_path, random_instance):
        cold_engine = serial_engine(cache=ResultCache(directory=tmp_path))
        cold = local_averaging_solution(random_instance, 1, engine=cold_engine)
        # Fresh engine + fresh cache object: every hit comes from disk JSON.
        warm_engine = serial_engine(cache=ResultCache(directory=tmp_path))
        warm = local_averaging_solution(random_instance, 1, engine=warm_engine)
        assert warm_engine.stats.executed == 0
        assert warm_engine.cache.stats.disk_hits > 0
        assert warm.objective == cold.objective
        assert warm.x == cold.x

    def test_baselines_match_across_engines(self, cycle8):
        pooled = BatchSolver(mode="thread", max_workers=4)
        assert single_shot_local_solution(
            cycle8, 1, engine=serial_engine()
        ) == single_shot_local_solution(cycle8, 1, engine=pooled)
        assert unshrunk_averaging_solution(
            cycle8, 1, engine=serial_engine()
        ) == unshrunk_averaging_solution(cycle8, 1, engine=pooled)


class TestDeduplication:
    def test_identical_views_collapse_to_one_solve(self):
        # R >= diameter: every agent's ball is the whole vertex set, so all
        # canonical local subproblems are the same problem.
        problem = cycle_instance(8)
        engine = serial_engine()
        local_averaging_solution(problem, 6, engine=engine)
        assert engine.stats.units == 8
        assert engine.stats.executed == 1
        assert engine.stats.dedup_saved == 7

    def test_vacuous_local_lp_is_all_zero_with_inf_objective(self, cycle8):
        # R = 1 on a cycle leaves some beneficiary supports incomplete only
        # for tiny views; build a view of a single agent instead.
        engine = serial_engine()
        sub = cycle8.local_subproblem([cycle8.agents[0]])
        (outcome,) = engine.solve_subproblems([sub])
        assert outcome.objective == math.inf
        assert set(outcome.x.values()) == {0.0}


class TestSweepCaching:
    def test_warm_radius_sweep_performs_zero_lp_solves(self, grid4x4):
        """Acceptance criterion: a warm-cache radius_sweep re-run is pure
        cache traffic — zero LP solves, zero cache misses."""
        engine = serial_engine(cache=ResultCache())
        cold_rows = radius_sweep(grid4x4, [1, 2], engine=engine)
        executed_cold = engine.stats.executed
        misses_cold = engine.cache.stats.misses
        assert executed_cold > 0

        warm_rows = radius_sweep(grid4x4, [1, 2], engine=engine)
        assert engine.stats.executed == executed_cold, "warm run solved LPs"
        assert engine.cache.stats.misses == misses_cold, "warm run missed cache"
        assert engine.cache.stats.hits >= executed_cold
        assert warm_rows == cold_rows

    def test_warm_radius_sweep_across_processes_via_disk(self, tmp_path, cycle8):
        radius_sweep(
            cycle8, [1], engine=serial_engine(cache=ResultCache(directory=tmp_path))
        )
        fresh = serial_engine(cache=ResultCache(directory=tmp_path))
        radius_sweep(cycle8, [1], engine=fresh)
        assert fresh.stats.executed == 0
        assert fresh.cache.stats.misses == 0

    def test_safe_ratio_sweep_batches_whole_instances(self, tiny_instance, cycle8):
        engine = serial_engine(cache=ResultCache())
        rows = safe_ratio_sweep([tiny_instance, cycle8], engine=engine)
        assert len(rows) == 2
        assert engine.stats.batches == 1
        assert engine.stats.units == 2
        # Second sweep over the same instances: all cached.
        safe_ratio_sweep([tiny_instance, cycle8], engine=engine)
        assert engine.stats.executed == 2

    def test_invalidation_forces_resolve(self, tiny_instance):
        from repro.engine import fingerprint_request

        engine = serial_engine(cache=ResultCache())
        engine.solve_maxmin(tiny_instance)
        key = fingerprint_request(tiny_instance, "maxmin_exact", backend="scipy")
        assert engine.cache.invalidate(key)
        engine.solve_maxmin(tiny_instance)
        assert engine.stats.executed == 2


class TestJobRegistry:
    def test_jobs_record_solves_and_cache_hits(self, tiny_instance):
        registry = RunRegistry()
        engine = serial_engine(cache=ResultCache(), registry=registry)
        engine.solve_maxmin(tiny_instance)
        engine.solve_maxmin(tiny_instance)
        statuses = [job.status for job in registry]
        assert statuses == ["done", "cached"]
        done = registry.jobs[0]
        assert done.kind == "maxmin_exact"
        assert done.duration_s > 0
        assert len(done.fingerprint) == 64

    def test_registry_save_load_round_trip(self, tmp_path, tiny_instance):
        registry = RunRegistry(run_id="run-test")
        engine = serial_engine(registry=registry)
        engine.solve_maxmin(tiny_instance)
        path = registry.save(tmp_path / "registry.json")
        loaded = RunRegistry.load(path)
        assert loaded.run_id == "run-test"
        assert [j.as_dict() for j in loaded] == [j.as_dict() for j in registry]
        assert loaded.summary()["by_status"] == {"done": 1}

    def test_failed_jobs_are_recorded(self):
        from repro import MaxMinLPBuilder, UnboundedError

        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "v1", 1.0)
        no_beneficiaries = builder.build(validate=False)
        registry = RunRegistry()
        engine = serial_engine(registry=registry)
        with pytest.raises(UnboundedError):
            engine.solve_maxmin(no_beneficiaries)
        assert [job.status for job in registry] == ["failed"]
        assert registry.jobs[0].error


class TestGenericMap:
    def test_serial_map_preserves_order(self):
        engine = serial_engine()
        assert engine.map(lambda v: v * v, range(5)) == [0, 1, 4, 9, 16]

    def test_thread_map_preserves_order(self):
        engine = BatchSolver(mode="thread", max_workers=4)
        assert engine.map(lambda v: v * v, range(16)) == [v * v for v in range(16)]

    def test_single_item_short_circuits_pool(self):
        engine = BatchSolver(mode="process", max_workers=4)
        # lambdas cannot be pickled; a 1-item batch must run in-process.
        assert engine.map(lambda v: v + 1, [41]) == [42]
