"""Unit tests for content fingerprints of instances and solve requests."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro import MaxMinLPBuilder, fingerprint_instance, fingerprint_request
from repro.engine import canonical_json, fingerprint_data


def tiny_problem():
    builder = MaxMinLPBuilder()
    builder.set_consumption("i", "v1", 1.0)
    builder.set_consumption("i", "v2", 1.0)
    builder.set_benefit("k", "v1", 1.0)
    builder.set_benefit("k", "v2", 1.0)
    return builder.build()


class TestCanonicalJson:
    def test_key_order_is_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_digest_matches_canonical_form(self):
        assert fingerprint_data({"a": 1}) == fingerprint_data({"a": 1})
        assert fingerprint_data({"a": 1}) != fingerprint_data({"a": 2})


class TestInstanceFingerprint:
    def test_equal_instances_equal_fingerprints(self, tiny_instance):
        assert fingerprint_instance(tiny_instance) == fingerprint_instance(
            tiny_problem()
        )

    def test_construction_order_does_not_matter(self):
        forward = MaxMinLPBuilder()
        forward.set_consumption("i", "v1", 1.0)
        forward.set_consumption("i", "v2", 1.0)
        forward.set_benefit("k", "v1", 1.0)
        forward.set_benefit("k", "v2", 1.0)
        backward = MaxMinLPBuilder()
        backward.add_agent("v1").add_agent("v2")
        backward.set_benefit("k", "v2", 1.0)
        backward.set_benefit("k", "v1", 1.0)
        backward.set_consumption("i", "v2", 1.0)
        backward.set_consumption("i", "v1", 1.0)
        assert fingerprint_instance(forward.build()) == fingerprint_instance(
            backward.build()
        )

    def test_coefficient_changes_change_the_fingerprint(self):
        base = tiny_problem()
        perturbed = MaxMinLPBuilder()
        perturbed.set_consumption("i", "v1", 1.0)
        perturbed.set_consumption("i", "v2", 2.0)
        perturbed.set_benefit("k", "v1", 1.0)
        perturbed.set_benefit("k", "v2", 1.0)
        assert fingerprint_instance(base) != fingerprint_instance(perturbed.build())

    def test_agent_order_is_content(self):
        """Column order fixes the LP handed to the backend, so it must hash."""
        ab = MaxMinLPBuilder()
        ab.add_agent("v1").add_agent("v2")
        ab.set_consumption("i", "v1", 1.0)
        ab.set_consumption("i", "v2", 1.0)
        ab.set_benefit("k", "v1", 1.0)
        ab.set_benefit("k", "v2", 1.0)
        ba = MaxMinLPBuilder()
        ba.add_agent("v2").add_agent("v1")
        ba.set_consumption("i", "v1", 1.0)
        ba.set_consumption("i", "v2", 1.0)
        ba.set_benefit("k", "v1", 1.0)
        ba.set_benefit("k", "v2", 1.0)
        assert fingerprint_instance(ab.build()) != fingerprint_instance(ba.build())

    def test_tuple_identifiers_supported(self, grid4x4):
        assert len(fingerprint_instance(grid4x4)) == 64

    def test_unstable_identifier_types_rejected(self):
        """Objects with address-bearing reprs must fail loudly, not alias."""
        from repro import MaxMinLP

        class Opaque:
            pass

        agent = Opaque()
        problem = MaxMinLP(
            [agent], {("i", agent): 1.0}, {("k", agent): 1.0}, validate=False
        )
        with pytest.raises(TypeError, match="cannot fingerprint identifier"):
            fingerprint_instance(problem)

    def test_stable_across_process_restarts(self):
        """The digest is pure content: a fresh interpreter reproduces it.

        The literal below pins the version-2 (raw CSR buffer) encoding; if
        it ever changes, bump FINGERPRINT_VERSION instead of updating the
        literal blindly.
        """
        expected = "96c349dbca6383b324cf61f41fae38493a91c2ae07c009754094ed3af14c8b85"
        assert fingerprint_instance(tiny_problem()) == expected
        script = (
            "from repro import MaxMinLPBuilder, fingerprint_instance\n"
            "b = MaxMinLPBuilder()\n"
            "b.set_consumption('i', 'v1', 1.0)\n"
            "b.set_consumption('i', 'v2', 1.0)\n"
            "b.set_benefit('k', 'v1', 1.0)\n"
            "b.set_benefit('k', 'v2', 1.0)\n"
            "print(fingerprint_instance(b.build()))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True, check=True
        )
        assert out.stdout.strip() == expected


class TestRequestFingerprint:
    def test_depends_on_algorithm_backend_and_params(self):
        problem = tiny_problem()
        base = fingerprint_request(problem, "local_lp", backend="scipy")
        assert base == (
            "c6789511d9b2ee79903b96ff0d50c7f17a3be956b42d5877c4e5ace8424ecd76"
        )
        assert fingerprint_request(problem, "maxmin_exact", backend="scipy") != base
        assert fingerprint_request(problem, "local_lp", backend="simplex") != base
        assert (
            fingerprint_request(problem, "local_lp", backend="scipy", params={"R": 2})
            != base
        )

    def test_precomputed_instance_fingerprint_shortcut(self):
        problem = tiny_problem()
        inst = fingerprint_instance(problem)
        assert fingerprint_request(
            None, "local_lp", backend="scipy", instance_fingerprint=inst
        ) == fingerprint_request(problem, "local_lp", backend="scipy")

    def test_requires_problem_or_fingerprint(self):
        with pytest.raises(ValueError):
            fingerprint_request(None, "local_lp", backend="scipy")
