"""Engine-level tests of the batched LP strategies (:mod:`repro.lp.batch`).

The engine's default ``lp_strategy="per-lp"`` must be bit-identical to the
historical one-call-per-LP behaviour (the rest of the suite asserts that
everywhere); these tests cover the opt-in ``"stacked"`` path: exact
statuses and optimal values, deterministic chunking across execution
modes, and the compiled-buffer process fan-out.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    BatchSolver,
    ResultCache,
    cycle_instance,
    grid_instance,
    local_averaging_solution,
    safe_solution,
    safe_value,
    safe_values_array,
)
from repro.lp import count_highs_calls
from repro.scenarios.registry import build_instance, list_families
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(scope="module")
def weighted_grid():
    """A small instance whose views are (mostly) pairwise non-isomorphic."""
    return grid_instance((4, 4), weights="random", seed=5)


class TestEngineValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            BatchSolver(lp_strategy="quantum")

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            BatchSolver(lp_chunk_size=0)


class TestStackedEngine:
    def test_one_highs_call_per_chunk(self, weighted_grid):
        engine = BatchSolver(
            cache=ResultCache(), lp_strategy="stacked", lp_chunk_size=1000
        )
        with count_highs_calls() as counter:
            local_averaging_solution(weighted_grid, 1, engine=engine)
        # All distinct local LPs of the batch go through one stacked call.
        assert counter.calls == 1
        assert engine.stats.executed > 1
        # The solver-side counters travel back from the chunk worker.
        assert engine.lp_stats.stacked_calls == 1
        assert engine.lp_stats.lps == engine.stats.executed
        assert engine.lp_stats.fallback_solves == 0

    def test_matches_per_lp_values(self, weighted_grid):
        base_engine = BatchSolver(cache=ResultCache())
        fast_engine = BatchSolver(cache=ResultCache(), lp_strategy="stacked")
        base = local_averaging_solution(weighted_grid, 1, engine=base_engine)
        fast = local_averaging_solution(weighted_grid, 1, engine=fast_engine)
        for u in weighted_grid.agents:
            a, b = base.local_objectives[u], fast.local_objectives[u]
            if math.isinf(a) or math.isinf(b):
                assert a == b
            else:
                assert b == pytest.approx(a, abs=1e-8)
        assert weighted_grid.is_feasible(weighted_grid.to_array(fast.x))
        opt_a = base_engine.solve_maxmin(weighted_grid)
        opt_b = fast_engine.solve_maxmin(weighted_grid)
        assert opt_b.objective == pytest.approx(opt_a.objective, abs=1e-9)

    def test_modes_agree_under_stacked(self, weighted_grid):
        results = {}
        for mode in ("serial", "thread"):
            engine = BatchSolver(
                mode=mode,
                max_workers=2,
                cache=ResultCache(),
                lp_strategy="stacked",
                lp_chunk_size=4,
            )
            results[mode] = local_averaging_solution(
                weighted_grid, 1, engine=engine
            )
        # Chunk boundaries depend only on submission order, so pooled and
        # serial runs of the same batch are bit-identical.
        assert results["serial"].x == results["thread"].x
        assert (
            results["serial"].local_objectives
            == results["thread"].local_objectives
        )

    def test_process_mode_ships_buffers_and_agrees(self, weighted_grid):
        serial = BatchSolver(
            cache=ResultCache(), lp_strategy="stacked", lp_chunk_size=4
        )
        pooled = BatchSolver(
            mode="process",
            max_workers=2,
            cache=ResultCache(),
            lp_strategy="stacked",
            lp_chunk_size=4,
        )
        a = local_averaging_solution(weighted_grid, 1, engine=serial)
        b = local_averaging_solution(weighted_grid, 1, engine=pooled)
        assert a.x == b.x
        assert a.local_objectives == b.local_objectives

    def test_shared_cache_isolates_strategies(self, weighted_grid, tmp_path):
        """A stacked-warmed cache must never answer a per-lp engine.

        Per-LP results are promised bit-identical to the historical engine
        *including across cache states*; stacked results are vertex-level
        batch-composition-dependent, so the two key spaces are disjoint.
        """
        stacked = BatchSolver(
            cache=ResultCache(directory=tmp_path), lp_strategy="stacked"
        )
        local_averaging_solution(weighted_grid, 1, engine=stacked)
        per_lp = BatchSolver(cache=ResultCache(directory=tmp_path))
        warm = local_averaging_solution(weighted_grid, 1, engine=per_lp)
        # Not a single stacked payload was reused: the per-lp engine
        # solved everything itself...
        assert per_lp.stats.executed == stacked.stats.executed
        # ...and its output is bit-identical to a cache-free per-lp run.
        fresh = local_averaging_solution(
            weighted_grid, 1, engine=BatchSolver(cache=ResultCache())
        )
        assert warm.x == fresh.x
        assert warm.local_objectives == fresh.local_objectives

    def test_warm_cache_reuses_stacked_results(self, weighted_grid):
        cache = ResultCache()
        first = BatchSolver(cache=cache, lp_strategy="stacked")
        cold = local_averaging_solution(weighted_grid, 1, engine=first)
        second = BatchSolver(cache=cache, lp_strategy="stacked")
        warm = local_averaging_solution(weighted_grid, 1, engine=second)
        assert second.stats.executed == 0
        assert warm.x == cold.x

    def test_grouped_strategy_via_simplex_backend(self, weighted_grid):
        engine = BatchSolver(cache=ResultCache(), lp_strategy="grouped")
        outcome = engine.solve_maxmin(weighted_grid, backend="simplex")
        reference = BatchSolver(cache=ResultCache()).solve_maxmin(
            weighted_grid, backend="simplex"
        )
        assert outcome.objective == pytest.approx(
            reference.objective, abs=1e-8
        )

    def test_strategy_backend_mismatch_degrades_to_auto(self, weighted_grid):
        # A stacked engine asked for a simplex solve must not error.
        engine = BatchSolver(cache=ResultCache(), lp_strategy="stacked")
        outcome = engine.solve_maxmin(weighted_grid, backend="simplex")
        assert outcome.objective > 0


class TestSharedCanonIndex:
    def test_injected_index_changes_nothing(self, weighted_grid):
        from repro.canon.labeling import CanonicalIndex

        shared = CanonicalIndex()
        a = local_averaging_solution(
            weighted_grid,
            1,
            engine=BatchSolver(cache=ResultCache(), canon_index=shared),
        )
        b = local_averaging_solution(
            weighted_grid,
            1,
            engine=BatchSolver(cache=ResultCache(), canon_index=shared),
        )
        c = local_averaging_solution(
            weighted_grid, 1, engine=BatchSolver(cache=ResultCache())
        )
        assert a.x == b.x == c.x


#: Small scenarios per registered family for the safe-equality sweep.
SAFE_FAMILY_PARAMS = {
    "cycle": {"n": 16},
    "path": {"n": 12},
    "grid": {"shape": (4, 4)},
    "torus": {"shape": (4, 4)},
    "unit_disk": {"n": 16, "radius": 0.3},
    "random_bounded_degree": {"n_agents": 14},
    "random_regular_bipartite": {"n_side": 6},
    "sidon_bipartite": {"degree": 3},
    "isp": {"n_customers": 5, "n_routers": 3},
    "sensor": {"n_sensors": 10, "n_relays": 4, "n_areas": 3},
}


@pytest.mark.parametrize("family", sorted(SAFE_FAMILY_PARAMS))
def test_safe_vectorization_bit_identical_per_family(family):
    """``safe_values_array`` == per-agent ``safe_value`` on every family."""
    assert set(SAFE_FAMILY_PARAMS) == set(list_families())
    spec = ScenarioSpec(
        family=family, params=SAFE_FAMILY_PARAMS[family], seed=7, radii=()
    )
    problem = build_instance(spec)
    values = safe_values_array(problem)
    solution = safe_solution(problem)
    for j, v in enumerate(problem.agents):
        scalar = safe_value(problem, v)
        assert values[j] == scalar  # exact: same floats, same min
        assert solution[v] == scalar


def test_safe_vectorization_handles_empty_columns():
    from repro import MaxMinLPBuilder

    builder = MaxMinLPBuilder()
    builder.set_consumption("i", "a", 2.0)
    builder.set_benefit("k", "a", 1.0)
    builder.set_benefit("k", "b", 1.0)  # agent "b" has no resources
    problem = builder.build(validate=False)
    assert safe_value(problem, "b") == 0.0
    assert safe_solution(problem)["b"] == 0.0
    assert safe_values_array(problem)[problem.agent_position("b")] == 0.0


@pytest.mark.parametrize(
    "columns",
    [
        # trailing empty column: its reduceat segment must not swallow the
        # preceding column's last (and smallest) candidate
        {"u": [("i1", 2.0), ("i2", 4.0), ("i3", 8.0)], "w": []},
        # middle empty column between non-empty ones
        {"a": [("i1", 1.0)], "b": [], "c": [("i2", 1.0), ("i3", 0.5)]},
        # empties first, between and last
        {"z0": [], "z1": [("i1", 3.0)], "z2": [], "z3": [("i2", 1.5)], "z4": []},
    ],
)
def test_safe_vectorization_empty_column_segments(columns):
    """Regression: reduceat segment bounds around constraint-free agents."""
    from repro import MaxMinLPBuilder

    builder = MaxMinLPBuilder()
    for agent, resources in columns.items():
        builder.add_agent(agent)
        for resource, coeff in resources:
            builder.set_consumption(resource, agent, coeff)
        builder.set_benefit("k", agent, 1.0)
    problem = builder.build(validate=False)
    values = safe_values_array(problem)
    for j, agent in enumerate(problem.agents):
        assert values[j] == safe_value(problem, agent)


def test_bisection_probe_batching_agrees(cycle8):
    from repro.lp import solve_max_min, solve_max_min_bisection

    exact = solve_max_min(cycle8).objective
    classic = solve_max_min_bisection(cycle8, tol=1e-7).objective
    swept = solve_max_min_bisection(
        cycle8, tol=1e-7, probes_per_round=8, strategy="stacked"
    ).objective
    assert classic == pytest.approx(exact, abs=1e-5)
    assert swept == pytest.approx(exact, abs=1e-5)
