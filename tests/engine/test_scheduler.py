"""The reusable request scheduler: dedup, cache, single-flight coalescing."""

from __future__ import annotations

import threading

import pytest

from repro.engine import RequestScheduler, ResultCache, RunRegistry
from repro.engine.scheduler import (
    SOURCE_CACHE,
    SOURCE_COALESCED,
    SOURCE_SOLVED,
)


def _counting_solve(log=None, delay_event=None):
    """A solve callback that records what it was asked to solve."""
    calls = []

    def solve(units):
        if delay_event is not None:
            delay_event.wait()
        calls.append(list(units))
        if log is not None:
            log.append(list(units))
        return [(f"answer:{unit}", 0.0) for unit in units]

    solve.calls = calls
    return solve


class TestSchedulerBasics:
    def test_results_in_submission_order(self):
        scheduler = RequestScheduler(cache=ResultCache())
        solve = _counting_solve()
        out = scheduler.run(
            ["k1", "k2"],
            [lambda: "u1", lambda: "u2"],
            kind="t",
            solve=solve,
        )
        assert out == ["answer:u1", "answer:u2"]
        assert scheduler.stats.executed == 2

    def test_within_batch_dedup_builds_once(self):
        scheduler = RequestScheduler(cache=ResultCache())
        built = []

        def builder(name):
            def build():
                built.append(name)
                return name
            return build

        solve = _counting_solve()
        out = scheduler.run(
            ["a", "b", "a", "a"],
            [builder("u-a"), builder("u-b"), builder("dup1"), builder("dup2")],
            kind="t",
            solve=solve,
        )
        assert out == ["answer:u-a", "answer:u-b", "answer:u-a", "answer:u-a"]
        assert built == ["u-a", "u-b"]  # duplicate builders never invoked
        assert scheduler.stats.dedup_saved == 2
        assert scheduler.stats.executed == 2

    def test_cache_hits_skip_solving(self):
        cache = ResultCache()
        scheduler = RequestScheduler(cache=cache)
        solve = _counting_solve()
        scheduler.run(["k"], [lambda: "u"], kind="t", solve=solve)
        again = scheduler.run(["k"], [lambda: "u"], kind="t", solve=solve)
        assert again == ["answer:u"]
        assert len(solve.calls) == 1
        assert cache.stats.hits == 1

    def test_details_reports_sources(self):
        scheduler = RequestScheduler(cache=ResultCache())
        solve = _counting_solve()
        first = scheduler.run(
            ["k"], [lambda: "u"], kind="t", solve=solve, details=True
        )
        second = scheduler.run(
            ["k"], [lambda: "u"], kind="t", solve=solve, details=True
        )
        assert first == [("answer:u", SOURCE_SOLVED)]
        assert second == [("answer:u", SOURCE_CACHE)]

    def test_works_without_cache_or_registry(self):
        scheduler = RequestScheduler()
        solve = _counting_solve()
        assert scheduler.run(["k"], [lambda: "u"], kind="t", solve=solve) == [
            "answer:u"
        ]

    def test_registry_records_solved_and_cached(self):
        registry = RunRegistry()
        scheduler = RequestScheduler(cache=ResultCache(), registry=registry)
        solve = _counting_solve()
        scheduler.run(["k"], [lambda: "u"], kind="kind-x", solve=solve)
        scheduler.run(["k"], [lambda: "u"], kind="kind-x", solve=solve)
        records = [record for record in registry if record.kind == "kind-x"]
        assert len(records) == 2
        assert [record.cached for record in records] == [False, True]

    def test_solve_exception_propagates_and_records_error(self):
        registry = RunRegistry()
        scheduler = RequestScheduler(cache=ResultCache(), registry=registry)

        def solve(units):
            raise RuntimeError("solver exploded")

        with pytest.raises(RuntimeError, match="solver exploded"):
            scheduler.run(["k"], [lambda: "u"], kind="t", solve=solve)
        (record,) = list(registry)
        assert record.error == "solver exploded"
        # The failed flight must not linger: a retry solves afresh.
        ok = _counting_solve()
        assert scheduler.run(["k"], [lambda: "u"], kind="t", solve=ok) == [
            "answer:u"
        ]


class TestSchedulerCoalescing:
    def test_concurrent_identical_requests_solve_once(self):
        cache = ResultCache()
        scheduler = RequestScheduler(cache=cache)
        release = threading.Event()
        solve = _counting_solve(delay_event=release)
        n_threads = 8
        started = threading.Barrier(n_threads + 1)
        results = [None] * n_threads

        def request(slot):
            started.wait()
            (out,) = scheduler.run(
                ["shared"], [lambda: f"unit-{slot}"], kind="t", solve=solve
            )
            results[slot] = out

        threads = [
            threading.Thread(target=request, args=(slot,))
            for slot in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        started.wait()  # all requests in flight...
        release.set()  # ...then let the single owner solve
        for thread in threads:
            thread.join()
        assert scheduler.stats.executed == 1
        assert len(solve.calls) == 1
        # Everyone got the owner's payload, whichever thread owned it.
        assert len(set(results)) == 1
        assert results[0].startswith("answer:unit-")
        # Every non-owner either attached to the flight or (arriving after
        # publication) hit the cache; none of them solved.
        assert scheduler.stats.coalesced + cache.stats.hits == n_threads - 1

    def test_attached_requests_see_owner_exception(self):
        scheduler = RequestScheduler(cache=ResultCache())
        release = threading.Event()
        arrived = threading.Barrier(2 + 1)

        def failing_solve(units):
            release.wait()
            raise ValueError("owner failed")

        errors = []

        def request():
            arrived.wait()
            try:
                scheduler.run(
                    ["shared"], [lambda: "u"], kind="t", solve=failing_solve
                )
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=request) for _ in range(2)]
        for thread in threads:
            thread.start()
        arrived.wait()
        release.set()
        for thread in threads:
            thread.join()
        assert errors == ["owner failed", "owner failed"]

    def test_two_way_foreign_flights_do_not_deadlock(self):
        """Thread A owns k1 and waits on k2; thread B the reverse.

        Builders run immediately after a key is claimed, so a builder that
        blocks until the *other* thread has claimed its own key forces the
        exact cross-ownership interleaving: each thread then attaches to a
        flight owned by the other.  The solve-and-publish-before-waiting
        ordering is what keeps this from deadlocking.
        """
        cache = ResultCache()
        scheduler = RequestScheduler(cache=cache)
        claimed = {"k1": threading.Event(), "k2": threading.Event()}
        done = []

        def make_builder(own: str):
            other = "k2" if own == "k1" else "k1"

            def build():
                claimed[own].set()
                assert claimed[other].wait(timeout=10), "peer never claimed"
                return own

            return build

        def solve(units):
            return [(f"answer:{unit}", 0.0) for unit in units]

        def request(own: str, foreign: str) -> None:
            out = scheduler.run(
                [own, foreign],
                [make_builder(own), lambda: foreign],
                kind="t",
                solve=solve,
            )
            done.append(sorted(out))

        a = threading.Thread(target=request, args=("k1", "k2"))
        b = threading.Thread(target=request, args=("k2", "k1"))
        a.start()
        b.start()
        a.join(timeout=30)
        b.join(timeout=30)
        assert not a.is_alive() and not b.is_alive(), "coalescing deadlocked"
        assert done[0] == ["answer:k1", "answer:k2"]
        assert done[1] == ["answer:k1", "answer:k2"]
        assert scheduler.stats.executed == 2  # each key solved exactly once
        # Each thread's foreign key was answered without solving: by
        # attaching to the peer's flight, or — when the peer had already
        # published and cached — by a cache hit.
        assert scheduler.stats.coalesced + cache.stats.hits == 2

    def test_coalesce_disabled_solves_independently(self):
        scheduler = RequestScheduler(cache=None, coalesce=False)
        release = threading.Event()
        solve = _counting_solve(delay_event=release)
        barrier = threading.Barrier(2 + 1)

        def request():
            barrier.wait()
            scheduler.run(["k"], [lambda: "u"], kind="t", solve=solve)

        threads = [threading.Thread(target=request) for _ in range(2)]
        for thread in threads:
            thread.start()
        barrier.wait()
        release.set()
        for thread in threads:
            thread.join()
        assert scheduler.stats.executed == 2
        assert scheduler.stats.coalesced == 0

    def test_coalesced_source_reported_in_details(self):
        scheduler = RequestScheduler(cache=ResultCache())
        release = threading.Event()
        owner_running = threading.Event()

        def slow_solve(units):
            owner_running.set()
            release.wait()
            return [(f"answer:{unit}", 0.0) for unit in units]

        owner_out = []

        def owner():
            owner_out.append(
                scheduler.run(
                    ["k"], [lambda: "u"], kind="t", solve=slow_solve, details=True
                )
            )

        thread = threading.Thread(target=owner)
        thread.start()
        assert owner_running.wait(timeout=10)
        follower_out = []

        def follower():
            follower_out.append(
                scheduler.run(
                    ["k"], [lambda: "u"], kind="t", solve=slow_solve, details=True
                )
            )

        follower_thread = threading.Thread(target=follower)
        follower_thread.start()
        # Give the follower a moment to attach, then publish.
        release.set()
        thread.join(timeout=30)
        follower_thread.join(timeout=30)
        assert owner_out[0] == [("answer:u", SOURCE_SOLVED)]
        (payload, source) = follower_out[0][0]
        assert payload == "answer:u"
        assert source in (SOURCE_COALESCED, SOURCE_CACHE)
