"""Plan isolation for the faults tests.

These tests install their own :class:`FaultPlan` objects; a plan inherited
from the ``REPRO_FAULT_PLAN`` environment variable (as the CI chaos jobs
set) would collide with those installs.  Each test therefore starts with a
clean slate: no active plan and the env lookup marked as already done.
The env-loading tests re-arm the lookup explicitly via monkeypatch.
"""

from __future__ import annotations

import pytest

import repro.faults.plan as plan_module


@pytest.fixture(autouse=True)
def _isolated_fault_plan(monkeypatch):
    monkeypatch.setattr(plan_module, "_active_plan", None)
    monkeypatch.setattr(plan_module, "_env_checked", True)
