"""Chaos tests: injected faults exercising the resilience layer end to end.

Every test installs a seeded :class:`FaultPlan` and asserts two things at
once -- that the fault actually fired (``plan.injected() > 0``; a chaos
test that injects nothing proves nothing) and that the pipeline's answer
is exactly what the fault-free run produces (retry masking, containment,
quarantine) or fails in exactly the contained way it should.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import BatchSolver, ResultCache, UnboundedError, cycle_instance
from repro.engine.scheduler import RequestScheduler
from repro.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    inject,
    install_plan,
)
from repro.obs.metrics import get_registry
from repro.scenarios.runner import SuiteRunner
from repro.scenarios.spec import ScenarioSpec

#: Fast deterministic policy for the scheduler-level chaos tests: three
#: attempts, no real sleeping, retries only the injected transients.
POLICY = RetryPolicy(
    attempts=3, base_delay=0.0, jitter=0.0, retry_on=(InjectedFault,)
)


def _flaky_solve(units):
    """Solve callback that consults the HiGHS seam once per attempt."""

    def attempt():
        inject("lp.highs.call")
        return "solved"

    return [(POLICY.call(attempt), 0.0) for _ in units]


class TestSchedulerUnderChaos:
    def test_owner_failure_reaches_coalesced_waiter_then_recovers(self):
        """The abandoned-flight path under injected faults (issue item).

        Two concurrent requests for the same key: the owner's solve
        exhausts its retries on injected faults, so the flight fails and
        both the owner *and* the attached waiter see the identical
        InjectedFault -- while nothing poisons the cache.  The very next
        request for the same key succeeds: the failed flight was removed,
        and the plan's ``max_injections`` cap turns the fault transient so
        the retry layer masks it.
        """
        cache = ResultCache()
        scheduler = RequestScheduler(cache=cache)
        # 3 attempts burn injections 1-3 (request fails); the 4th and last
        # injection hits the follow-up request's first attempt, whose retry
        # is then clean: exactly one masked retry, then success.
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="lp.highs.call", probability=1.0, max_injections=4
                )
            ],
            seed=1,
        )

        def patient_solve(units):
            # Hold the flight open until the second thread has attached, so
            # the coalescing interleaving is deterministic, not a race.
            deadline = time.monotonic() + 5.0
            while scheduler.stats.coalesced < 1:
                if time.monotonic() > deadline:  # pragma: no cover
                    raise AssertionError("waiter never attached")
                time.sleep(0.001)
            return _flaky_solve(units)

        arrived = threading.Barrier(2)
        errors = []

        def request():
            arrived.wait()
            try:
                scheduler.run(
                    ["shared-key"],
                    [lambda: "unit"],
                    kind="chaos",
                    solve=patient_solve,
                )
            except InjectedFault as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=request) for _ in range(2)]
        with install_plan(plan):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        assert len(errors) == 2, f"both requests must fail, got {errors}"
        assert plan.injected() == 3
        assert scheduler._flights == {}, "failed flight must not linger"
        assert cache.get("shared-key") is None, "failures must not be cached"

        # Recovery: same key, fault now transient (one injection left).
        with install_plan(plan):
            (payload,) = scheduler.run(
                ["shared-key"], [lambda: "unit"], kind="chaos",
                solve=_flaky_solve,
            )
        assert payload == "solved"
        assert plan.injected() == 4
        assert cache.get("shared-key") == "solved"

    def test_waiter_on_truly_abandoned_flight_fails_loudly(self):
        """A builder that dies abandons its flight; the waiter is released
        with a RuntimeError instead of hanging forever."""
        scheduler = RequestScheduler(cache=ResultCache())
        owner_claimed = threading.Event()
        release_builder = threading.Event()
        outcomes = {}

        def dying_builder():
            owner_claimed.set()
            if not release_builder.wait(timeout=5.0):  # pragma: no cover
                raise AssertionError("waiter never arrived")
            raise InjectedFault("builder died before solving")

        def owner():
            try:
                scheduler.run(
                    ["doomed"], [dying_builder], kind="chaos",
                    solve=_flaky_solve,
                )
            except InjectedFault as exc:
                outcomes["owner"] = str(exc)

        def waiter():
            owner_claimed.wait(timeout=5.0)
            try:
                scheduler.run(
                    ["doomed"], [lambda: "unit"], kind="chaos",
                    solve=_flaky_solve,
                )
            except (InjectedFault, RuntimeError) as exc:
                outcomes["waiter"] = str(exc)

        threads = [
            threading.Thread(target=owner),
            threading.Thread(target=waiter),
        ]
        for thread in threads:
            thread.start()
        # The waiter records its attachment (stats.coalesced) just before
        # blocking on the owner's flight; only then let the builder die, so
        # the abandoned-flight interleaving is deterministic.
        deadline = time.monotonic() + 5.0
        while scheduler.stats.coalesced < 1:
            if time.monotonic() > deadline:  # pragma: no cover
                raise AssertionError("waiter never attached")
            time.sleep(0.001)
        release_builder.set()
        for thread in threads:
            thread.join()

        assert outcomes["owner"] == "builder died before solving"
        assert "abandoned" in outcomes["waiter"]
        assert scheduler._flights == {}


class TestRetryMasking:
    def test_transient_highs_faults_leave_results_bit_identical(self):
        """The committed CI plan injects real faults yet changes nothing."""
        specs = [
            ScenarioSpec(family="cycle", params={"n": 8}, radii=(1, 2)),
            ScenarioSpec(family="path", params={"n": 9}, radii=(1,)),
        ]
        clean = [
            r.as_dict() for r in SuiteRunner(cache=ResultCache()).run(specs)
        ]
        plan = FaultPlan.load("benchmarks/fault_plan_ci.json")
        retries = get_registry().counter("engine.retries")
        before = retries.value
        with install_plan(plan):
            chaos = [
                r.as_dict()
                for r in SuiteRunner(cache=ResultCache()).run(specs)
            ]
        assert plan.injected() > 0, "the chaos run must actually inject"
        assert retries.value > before, "injections must be retry-absorbed"
        for record in (*clean, *chaos):
            record.pop("seconds")
        assert chaos == clean

    @pytest.mark.parametrize("mode", ["serial", "thread"])
    def test_masking_holds_across_execution_modes(self, mode, tmp_path):
        """Same plan, pooled engine, disk-tier cache: still bit-identical.

        (Process mode consults the HiGHS seam inside workers that have no
        plan installed; the parent-side cache seams still fire.  Thread
        workers share the installed plan, making this the stronger mode.)
        """
        spec = ScenarioSpec(family="cycle", params={"n": 10}, radii=(1, 2))
        clean = next(iter(SuiteRunner(cache=ResultCache()).run([spec]))).as_dict()
        plan = FaultPlan.load("benchmarks/fault_plan_ci.json")
        runner = SuiteRunner(
            mode=mode,
            max_workers=2,
            cache=ResultCache(directory=tmp_path / mode),
        )
        with install_plan(plan):
            chaos = next(iter(runner.run([spec]))).as_dict()
        assert plan.injected() > 0
        clean.pop("seconds")
        chaos.pop("seconds")
        assert chaos == clean


class TestCacheChaos:
    KEY = "f" * 64

    def test_transient_read_fault_is_retried(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(self.KEY, {"objective": 1.5})
        fresh = ResultCache(directory=tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="cache.disk.read", probability=1.0, max_injections=1
                )
            ]
        )
        retries = get_registry().counter("cache.retries")
        before = retries.value
        with install_plan(plan):
            assert fresh.get(self.KEY) == {"objective": 1.5}
        assert plan.injected() == 1
        assert retries.value == before + 1
        assert fresh.stats.disk_hits == 1

    def test_corrupt_read_quarantines_and_recovers(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put(self.KEY, {"objective": 2.0})
        fresh = ResultCache(directory=tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="cache.disk.read",
                    kind="corrupt",
                    probability=1.0,
                    max_injections=1,
                )
            ]
        )
        quarantined = get_registry().counter("cache.quarantined")
        before = quarantined.value
        with install_plan(plan):
            assert fresh.get(self.KEY) is None  # corrupt -> miss, not error
        assert fresh.stats.quarantined == 1
        assert quarantined.value == before + 1
        entry = fresh._entry_path(self.KEY)
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists(), (
            "the poisoned bytes must survive for post-mortems"
        )
        # The slot is usable again: re-put and read back cleanly.
        fresh.put(self.KEY, {"objective": 2.0})
        assert ResultCache(directory=tmp_path).get(self.KEY) == {
            "objective": 2.0
        }

    def test_torn_write_is_quarantined_by_the_next_reader(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="cache.disk.write",
                    kind="corrupt",
                    probability=1.0,
                    max_injections=1,
                )
            ]
        )
        with install_plan(plan):
            cache.put(self.KEY, {"objective": 3.0})
        # The writer's own memory tier is intact ...
        assert cache.get(self.KEY) == {"objective": 3.0}
        # ... but the disk entry is torn; a fresh process quarantines it.
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get(self.KEY) is None
        assert fresh.stats.quarantined == 1

    def test_persistent_write_failure_degrades_to_memory_only(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        plan = FaultPlan(
            [FaultSpec(seam="cache.disk.write", probability=1.0)]
        )
        with install_plan(plan):
            with pytest.warns(RuntimeWarning, match="memory-only"):
                cache.put(self.KEY, {"objective": 4.0})
        assert cache.stats.write_errors == 1
        assert cache.get(self.KEY) == {"objective": 4.0}  # memory tier
        assert cache.disk_entries() == 0
        assert plan.injected() == 3  # one per retry attempt


class TestExecutorChaos:
    def test_injected_pool_crash_respawns_once(self):
        engine = BatchSolver(mode="thread", max_workers=2)
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="engine.worker",
                    kind="crash",
                    probability=1.0,
                    max_injections=1,
                )
            ]
        )
        with install_plan(plan):
            with pytest.warns(RuntimeWarning, match="respawning"):
                assert engine.map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
        assert engine.stats.pool_respawns == 1
        assert engine.stats.pool_fallbacks == 0

    def test_second_crash_degrades_to_serial(self):
        engine = BatchSolver(mode="thread", max_workers=2)
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="engine.worker",
                    kind="crash",
                    probability=1.0,
                    max_injections=2,
                )
            ]
        )
        with install_plan(plan):
            with pytest.warns(RuntimeWarning) as caught:
                assert engine.map(lambda v: v * 2, [1, 2, 3]) == [2, 4, 6]
        messages = [str(w.message) for w in caught]
        assert any("respawning" in m for m in messages)
        assert any("running serially" in m for m in messages)
        assert engine.stats.pool_respawns == 1
        assert engine.stats.pool_fallbacks == 1

    def test_serial_transient_fault_is_absorbed(self):
        engine = BatchSolver(mode="serial")
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="engine.worker", probability=1.0, max_injections=2
                )
            ]
        )
        retries = get_registry().counter("engine.retries")
        before = retries.value
        with install_plan(plan):
            assert engine.map(lambda v: v, [7]) == [7]
        assert plan.injected() == 2
        assert retries.value == before + 2


class TestContainment:
    def test_poisoned_unit_fails_alone_and_healthy_work_is_cached(self):
        """One degenerate instance in a batch fails only itself: the
        healthy instance's result is published and cached before the
        failure surfaces, so re-requesting it solves nothing."""
        from repro import MaxMinLPBuilder

        healthy = cycle_instance(6)
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "v1", 1.0)
        degenerate = builder.build(validate=False)  # no beneficiaries

        reference = BatchSolver(mode="serial").solve_maxmin(healthy)

        engine = BatchSolver(mode="serial", cache=ResultCache())
        with pytest.raises(UnboundedError, match="no beneficiaries"):
            engine.solve_maxmin_batch([healthy, degenerate])
        assert engine.stats.unit_failures == 1

        executed_before = engine.stats.executed
        result = engine.solve_maxmin(healthy)
        assert engine.stats.executed == executed_before, (
            "the healthy unit must have been cached despite the batch error"
        )
        assert result.objective == reference.objective
        assert result.x == reference.x
