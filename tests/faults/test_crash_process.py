"""Wire format and seam validation of the ``crash-process`` fault kind."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.faults import (
    KINDS,
    SEAMS,
    FaultPlan,
    FaultSpec,
    inject,
    install_plan,
)

REPO = Path(__file__).resolve().parents[2]


class TestSpecValidation:
    def test_kind_and_seams_registered(self):
        assert "crash-process" in KINDS
        assert "suite.checkpoint" in SEAMS

    def test_allowed_on_durability_seams(self):
        for seam in ("cache.disk.write", "suite.checkpoint"):
            spec = FaultSpec(seam=seam, kind="crash-process", every=1)
            assert spec.kind == "crash-process"

    def test_rejected_on_non_durability_seams(self):
        for seam in ("lp.highs.call", "cache.disk.read", "serve.request",
                     "engine.worker"):
            with pytest.raises(ValueError, match="crash-process"):
                FaultSpec(seam=seam, kind="crash-process", every=1)


class TestWireFormat:
    def test_round_trip(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="suite.checkpoint",
                    kind="crash-process",
                    every=2,
                    max_injections=1,
                ),
                FaultSpec(
                    seam="cache.disk.write", kind="crash-process", every=3
                ),
            ],
            seed=11,
            name="chaos-kill",
        )
        again = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert again.to_dict() == plan.to_dict()

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        plan = FaultPlan(
            [FaultSpec(seam="cache.disk.write", kind="crash-process", every=1)]
        )
        path.write_text(json.dumps(plan.to_dict()))
        loaded = FaultPlan.load(path)
        assert loaded.name == "plan"  # defaulted from the file stem
        assert loaded.specs[0].to_dict() == plan.specs[0].to_dict()


class TestInjection:
    def test_inject_returns_fault_without_raising(self):
        # Unlike "raise", a crash-process fault must be *returned* to the
        # call site (which decides where in the write path to die), never
        # thrown from inject().
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="suite.checkpoint",
                    kind="crash-process",
                    every=1,
                    max_injections=1,
                )
            ]
        )
        with install_plan(plan):
            fault = inject("suite.checkpoint")
            assert fault is not None
            assert fault.kind == "crash-process"
            assert inject("suite.checkpoint") is None  # max_injections spent

    def test_other_seams_unaffected(self):
        plan = FaultPlan(
            [FaultSpec(seam="cache.disk.write", kind="crash-process", every=1)]
        )
        with install_plan(plan):
            assert inject("lp.highs.call") is None
            assert inject("suite.checkpoint") is None


class TestCompatibility:
    def test_ci_fault_plan_still_parses(self):
        path = REPO / "benchmarks" / "fault_plan_ci.json"
        plan = FaultPlan.load(path)
        assert plan.specs, "the committed CI fault plan went empty"
        assert all(spec.kind != "crash-process" for spec in plan.specs), (
            "the CI resilience plan must stay SIGKILL-free; chaos kill "
            "plans live in tests/recovery"
        )
        # Round-trips byte-identically through the extended wire format.
        assert FaultPlan.from_json(
            json.dumps(plan.to_dict())
        ).to_dict() == plan.to_dict()
