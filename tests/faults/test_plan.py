"""FaultPlan/FaultSpec: validation, determinism, wire format, installation."""

from __future__ import annotations

import json
import threading

import pytest

import repro.faults.plan as plan_module
from repro.faults import (
    KINDS,
    SEAMS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    InjectedWorkerCrash,
    active_plan,
    inject,
    install_plan,
)


class TestSpecValidation:
    def test_unknown_seam_rejected(self):
        with pytest.raises(ValueError, match="unknown seam"):
            FaultSpec(seam="not.a.seam", every=2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec(seam="lp.highs.call", kind="explode", every=2)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(seam="lp.highs.call")  # neither
        with pytest.raises(ValueError, match="exactly one"):
            FaultSpec(seam="lp.highs.call", probability=0.5, every=2)  # both

    def test_corrupt_only_on_cache_seams(self):
        FaultSpec(seam="cache.disk.read", kind="corrupt", every=2)  # fine
        with pytest.raises(ValueError, match="corrupt"):
            FaultSpec(seam="lp.highs.call", kind="corrupt", every=2)

    def test_crash_only_on_worker_seam(self):
        FaultSpec(seam="engine.worker", kind="crash", every=2)  # fine
        with pytest.raises(ValueError, match="crash"):
            FaultSpec(seam="serve.request", kind="crash", every=2)

    def test_latency_needs_duration(self):
        with pytest.raises(ValueError, match="latency_s"):
            FaultSpec(seam="serve.request", kind="latency", every=2)

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(seam="lp.highs.call", probability=1.5)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            FaultSpec.from_dict({"seam": "lp.highs.call", "every": 2, "bogus": 1})


class TestWireFormat:
    def test_plan_round_trips_exactly(self):
        plan = FaultPlan(
            [
                FaultSpec(seam="lp.highs.call", every=3, max_injections=2),
                FaultSpec(
                    seam="cache.disk.read",
                    kind="corrupt",
                    probability=0.25,
                    message="torn",
                ),
            ],
            seed=7,
            name="round-trip",
        )
        again = FaultPlan.from_json(json.dumps(plan.to_dict()))
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 7 and again.name == "round-trip"

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(ValueError, match="surprise"):
            FaultPlan.from_dict({"faults": [], "surprise": True})

    def test_load_names_plan_after_file(self, tmp_path):
        path = tmp_path / "my_chaos.json"
        path.write_text(json.dumps({"seed": 1, "faults": []}))
        assert FaultPlan.load(path).name == "my_chaos"

    def test_ci_plan_file_is_loadable_and_transient_only(self):
        """The committed CI chaos plan must parse and stay maskable:
        every-Nth (N >= 2) raises, corrupt-only on cache seams, latency."""
        plan = FaultPlan.load("benchmarks/fault_plan_ci.json")
        assert plan.specs, "CI plan must actually inject something"
        for spec in plan.specs:
            assert spec.probability == 0.0, "CI plan must be deterministic"
            if spec.kind == "raise":
                assert spec.every >= 2, (
                    "an every-1 raise defeats the retry layer and would "
                    "make CI results diverge"
                )
            assert spec.kind != "crash", "worker crashes are not transient"


class TestDeterminism:
    def test_every_nth_fires_deterministically(self):
        plan = FaultPlan([FaultSpec(seam="lp.highs.call", every=2)], seed=0)
        fired = []
        with install_plan(plan):
            for _ in range(6):
                try:
                    inject("lp.highs.call")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
        assert fired == [False, True, False, True, False, True]
        assert plan.log == [
            ("lp.highs.call", "raise", 2),
            ("lp.highs.call", "raise", 4),
            ("lp.highs.call", "raise", 6),
        ]

    def test_probability_draws_identical_across_resets(self):
        plan = FaultPlan(
            [FaultSpec(seam="lp.highs.call", probability=0.4)], seed=123
        )

        def run() -> list:
            with install_plan(plan):
                for _ in range(50):
                    try:
                        inject("lp.highs.call")
                    except InjectedFault:
                        pass
            return list(plan.log)

        first = run()
        plan.reset()
        second = run()
        assert first == second
        assert first, "probability 0.4 over 50 hits must fire sometimes"

    def test_two_plans_same_seed_agree(self):
        spec = {"seam": "lp.highs.call", "probability": 0.3}
        a = FaultPlan([FaultSpec(**spec)], seed=9)
        b = FaultPlan([FaultSpec(**spec)], seed=9)
        for _ in range(40):
            fa, fb = a.check("lp.highs.call"), b.check("lp.highs.call")
            assert (fa is None) == (fb is None)
        assert a.log == b.log

    def test_max_injections_caps_firing(self):
        plan = FaultPlan(
            [FaultSpec(seam="lp.highs.call", every=1, max_injections=2)]
        )
        outcomes = [plan.check("lp.highs.call") for _ in range(5)]
        assert [f is not None for f in outcomes] == [
            True, True, False, False, False,
        ]
        assert plan.injected() == 2
        assert plan.hits() == 5

    def test_reset_rewinds_everything(self):
        plan = FaultPlan([FaultSpec(seam="lp.highs.call", every=2)])
        for _ in range(4):
            plan.check("lp.highs.call")
        plan.reset()
        assert plan.hits() == 0 and plan.injected() == 0 and plan.log == []


class TestInjectBehaviour:
    def test_no_plan_is_a_noop(self):
        assert active_plan() is None
        assert inject("lp.highs.call") is None

    def test_raise_kind_raises_with_context(self):
        plan = FaultPlan([FaultSpec(seam="lp.highs.call", every=1)])
        with install_plan(plan):
            with pytest.raises(InjectedFault, match="variables=9"):
                inject("lp.highs.call", variables=9)

    def test_crash_kind_is_a_broken_pool(self):
        from concurrent.futures.process import BrokenProcessPool

        plan = FaultPlan(
            [FaultSpec(seam="engine.worker", kind="crash", every=1)]
        )
        with install_plan(plan):
            with pytest.raises(BrokenProcessPool):
                inject("engine.worker")
        assert issubclass(InjectedWorkerCrash, InjectedFault)

    def test_corrupt_kind_returned_to_call_site(self):
        plan = FaultPlan(
            [FaultSpec(seam="cache.disk.read", kind="corrupt", every=1)]
        )
        with install_plan(plan):
            fault = inject("cache.disk.read")
        assert fault is not None and fault.kind == "corrupt"

    def test_latency_kind_sleeps_then_continues(self):
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="serve.request", kind="latency",
                    every=1, latency_s=0.01,
                )
            ]
        )
        with install_plan(plan):
            assert inject("serve.request") is None  # slept, no error
        assert plan.injected() == 1

    def test_firing_increments_the_metrics_counter(self):
        from repro.obs.metrics import get_registry

        counter = get_registry().counter("faults.injected.lp.highs.call")
        before = counter.value
        plan = FaultPlan([FaultSpec(seam="lp.highs.call", every=1)])
        with install_plan(plan):
            with pytest.raises(InjectedFault):
                inject("lp.highs.call")
        assert counter.value == before + 1

    def test_first_firing_spec_wins(self):
        plan = FaultPlan(
            [
                FaultSpec(seam="cache.disk.read", kind="corrupt", every=2),
                FaultSpec(seam="cache.disk.read", kind="raise", every=2),
            ]
        )
        assert plan.check("cache.disk.read") is None
        fault = plan.check("cache.disk.read")
        assert fault.kind == "corrupt" and fault.spec_index == 0
        # Both specs advanced their counters even though only one fired.
        assert plan.hits() == 4


class TestInstallation:
    def test_install_is_exclusive(self):
        first = FaultPlan([FaultSpec(seam="lp.highs.call", every=2)])
        second = FaultPlan([FaultSpec(seam="serve.request", every=2)])
        with install_plan(first):
            assert active_plan() is first
            with pytest.raises(RuntimeError, match="already installed"):
                with second.install():
                    pass
        assert active_plan() is None

    def test_install_plan_tolerates_none(self):
        with install_plan(None) as plan:
            assert plan is None

    def test_env_var_plan_loads_lazily(self, tmp_path, monkeypatch):
        path = tmp_path / "env_plan.json"
        path.write_text(
            json.dumps(
                {"seed": 3, "faults": [{"seam": "lp.highs.call", "every": 2}]}
            )
        )
        monkeypatch.setenv("REPRO_FAULT_PLAN", str(path))
        monkeypatch.setattr(plan_module, "_env_checked", False)
        monkeypatch.setattr(plan_module, "_active_plan", None)
        plan = active_plan()
        assert plan is not None and plan.name == "env_plan"
        assert plan.seed == 3

    def test_env_var_absent_checks_once(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        monkeypatch.setattr(plan_module, "_env_checked", False)
        monkeypatch.setattr(plan_module, "_active_plan", None)
        assert active_plan() is None
        assert plan_module._env_checked is True

    def test_check_is_thread_safe(self):
        plan = FaultPlan(
            [FaultSpec(seam="lp.highs.call", every=2)], seed=0
        )
        n_threads, per_thread = 8, 250

        def hammer():
            for _ in range(per_thread):
                plan.check("lp.highs.call")

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert plan.hits() == total
        assert plan.injected() == total // 2


def test_seams_and_kinds_are_stable_public_names():
    """The documented seam/kind vocabulary the README and plans rely on."""
    assert SEAMS == (
        "lp.highs.call",
        "cache.disk.read",
        "cache.disk.write",
        "engine.worker",
        "serve.request",
        "suite.checkpoint",
    )
    assert KINDS == ("raise", "latency", "corrupt", "crash", "crash-process")
