"""RetryPolicy: bounded attempts, deterministic backoff, metric wiring."""

from __future__ import annotations

import pytest

from repro.faults import RetryPolicy
from repro.obs.metrics import get_registry


class Flaky:
    """Callable that fails ``failures`` times, then returns ``value``."""

    def __init__(self, failures: int, value: str = "ok", exc=ValueError):
        self.failures = failures
        self.value = value
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"transient #{self.calls}")
        return self.value


def _no_sleep(_delay: float) -> None:
    pass


class TestCall:
    def test_first_try_success_never_retries(self):
        fn = Flaky(failures=0)
        policy = RetryPolicy(attempts=3)
        assert policy.call(fn, sleep=_no_sleep) == "ok"
        assert fn.calls == 1

    def test_transient_failures_are_absorbed(self):
        fn = Flaky(failures=2)
        policy = RetryPolicy(attempts=3)
        assert policy.call(fn, sleep=_no_sleep) == "ok"
        assert fn.calls == 3

    def test_exhaustion_reraises_last_error(self):
        fn = Flaky(failures=5)
        policy = RetryPolicy(attempts=3)
        with pytest.raises(ValueError, match="transient #3"):
            policy.call(fn, sleep=_no_sleep)
        assert fn.calls == 3

    def test_non_matching_exception_not_retried(self):
        fn = Flaky(failures=1, exc=KeyError)
        policy = RetryPolicy(attempts=3, retry_on=(ValueError,))
        with pytest.raises(KeyError):
            policy.call(fn, sleep=_no_sleep)
        assert fn.calls == 1

    def test_attempts_one_means_no_retry(self):
        fn = Flaky(failures=1)
        policy = RetryPolicy(attempts=1)
        with pytest.raises(ValueError):
            policy.call(fn, sleep=_no_sleep)
        assert fn.calls == 1

    def test_each_retry_increments_metric(self):
        counter = get_registry().counter("test.retry.metric")
        before = counter.value
        policy = RetryPolicy(attempts=3)
        policy.call(Flaky(failures=2), metric="test.retry.metric",
                    sleep=_no_sleep)
        assert counter.value == before + 2

    def test_sleep_receives_backoff_delays(self):
        seen = []
        policy = RetryPolicy(
            attempts=3, base_delay=0.01, multiplier=2.0,
            max_delay=1.0, jitter=0.0,
        )
        policy.call(Flaky(failures=2), sleep=seen.append)
        assert seen == [0.01, 0.02]


class TestDelays:
    def test_yields_attempts_minus_one_values(self):
        policy = RetryPolicy(attempts=4, jitter=0.0)
        assert len(list(policy.delays())) == 3

    def test_capped_by_max_delay(self):
        policy = RetryPolicy(
            attempts=5, base_delay=0.1, multiplier=10.0,
            max_delay=0.3, jitter=0.0,
        )
        assert all(d <= 0.3 for d in policy.delays())

    def test_jitter_only_shrinks_delay(self):
        policy = RetryPolicy(
            attempts=4, base_delay=0.1, multiplier=1.0,
            max_delay=1.0, jitter=0.5, seed=42,
        )
        for delay in policy.delays():
            assert 0.05 <= delay <= 0.1

    def test_seeded_jitter_is_reproducible(self):
        kwargs = dict(attempts=4, base_delay=0.1, jitter=0.9, seed=7)
        assert list(RetryPolicy(**kwargs).delays()) == list(
            RetryPolicy(**kwargs).delays()
        )


class TestValidation:
    def test_attempts_below_one_rejected(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-0.1)
