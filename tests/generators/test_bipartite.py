"""Unit tests for regular bipartite graphs with girth guarantees."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro import ConstructionError
from repro.generators import (
    complete_bipartite_regular,
    cycle_bipartite,
    girth,
    is_regular_bipartite,
    projective_plane_incidence,
    random_regular_bipartite,
    regular_bipartite_with_girth,
)


class TestGirth:
    def test_forest_has_infinite_girth(self):
        g = nx.path_graph(6)
        assert girth(g) == math.inf

    def test_triangle(self):
        assert girth(nx.cycle_graph(3)) == 3

    def test_even_cycle(self):
        assert girth(nx.cycle_graph(8)) == 8

    def test_odd_cycle(self):
        assert girth(nx.cycle_graph(7)) == 7

    def test_complete_bipartite(self):
        assert girth(nx.complete_bipartite_graph(3, 3)) == 4

    def test_petersen_graph(self):
        assert girth(nx.petersen_graph()) == 5

    def test_cycle_with_chord(self):
        g = nx.cycle_graph(8)
        g.add_edge(0, 3)
        assert girth(g) == 4

    def test_matches_networkx_on_random_graphs(self):
        for seed in range(5):
            g = nx.gnp_random_graph(14, 0.25, seed=seed)
            expected = nx.girth(g) if g.number_of_edges() else math.inf
            assert girth(g) == expected


class TestExplicitConstructions:
    def test_cycle_bipartite(self):
        g = cycle_bipartite(5)
        assert is_regular_bipartite(g, 2)
        assert girth(g) == 10

    def test_cycle_bipartite_too_small(self):
        with pytest.raises(ValueError):
            cycle_bipartite(1)

    def test_complete_bipartite_regular(self):
        g = complete_bipartite_regular(3)
        assert is_regular_bipartite(g, 3)
        assert girth(g) == 4

    @pytest.mark.parametrize("q", [2, 3, 5])
    def test_projective_plane(self, q):
        g = projective_plane_incidence(q)
        n = q * q + q + 1
        assert g.number_of_nodes() == 2 * n
        assert is_regular_bipartite(g, q + 1)
        assert girth(g) == 6

    def test_projective_plane_requires_prime(self):
        with pytest.raises(ConstructionError):
            projective_plane_incidence(6)


class TestRandomConstruction:
    def test_random_regular_bipartite(self):
        g = random_regular_bipartite(12, 3, seed=0)
        assert is_regular_bipartite(g, 3)
        assert g.number_of_edges() == 36

    def test_random_regular_bipartite_reproducible(self):
        a = random_regular_bipartite(10, 3, seed=5)
        b = random_regular_bipartite(10, 3, seed=5)
        assert set(a.edges) == set(b.edges)

    def test_degree_larger_than_side_rejected(self):
        with pytest.raises(ConstructionError):
            random_regular_bipartite(2, 3)


class TestGirthSearcher:
    def test_degree_one(self):
        g = regular_bipartite_with_girth(1, 6)
        assert is_regular_bipartite(g, 1)
        assert girth(g) == math.inf

    def test_degree_two_long_girth(self):
        g = regular_bipartite_with_girth(2, 14)
        assert is_regular_bipartite(g, 2)
        assert girth(g) >= 14

    def test_girth_four_uses_complete_bipartite(self):
        g = regular_bipartite_with_girth(5, 4)
        assert is_regular_bipartite(g, 5)
        assert girth(g) >= 4

    @pytest.mark.parametrize("degree", [3, 4, 6, 8])
    def test_girth_six_explicit(self, degree):
        # degree - 1 is prime for these values, so the projective plane is used.
        g = regular_bipartite_with_girth(degree, 6, seed=1)
        assert is_regular_bipartite(g, degree)
        assert girth(g) >= 6

    @pytest.mark.parametrize("degree", [5, 7, 10])
    def test_girth_six_sidon_fallback(self, degree):
        # degree - 1 is composite for these values, so the Sidon circulant
        # construction is used instead of the projective plane.
        g = regular_bipartite_with_girth(degree, 6, seed=3)
        assert is_regular_bipartite(g, degree)
        assert girth(g) >= 6

    def test_impossible_budget_raises(self):
        with pytest.raises(ConstructionError):
            regular_bipartite_with_girth(3, 10, n_side=4, seed=0)


class TestSidonCirculant:
    @pytest.mark.parametrize("degree", [1, 2, 3, 5, 8])
    def test_regular_and_girth_six(self, degree):
        from repro.generators import sidon_circulant_bipartite

        g = sidon_circulant_bipartite(degree)
        assert is_regular_bipartite(g, degree)
        if degree >= 2:
            assert girth(g) >= 6

    def test_explicit_modulus(self):
        from repro.generators import sidon_circulant_bipartite

        g = sidon_circulant_bipartite(3, n=20)
        assert g.number_of_nodes() == 40
        assert is_regular_bipartite(g, 3)

    def test_too_small_modulus_raises(self):
        from repro.generators import sidon_circulant_bipartite

        with pytest.raises(ConstructionError):
            sidon_circulant_bipartite(5, n=6)

    def test_invalid_degree(self):
        from repro.generators import sidon_circulant_bipartite

        with pytest.raises(ValueError):
            sidon_circulant_bipartite(0)


class TestIsRegularBipartite:
    def test_rejects_untagged_graph(self):
        assert not is_regular_bipartite(nx.cycle_graph(4))

    def test_rejects_irregular(self):
        g = nx.Graph()
        g.add_edge(("L", 0), ("R", 0))
        g.add_edge(("L", 0), ("R", 1))
        assert not is_regular_bipartite(g)

    def test_rejects_same_side_edge(self):
        g = nx.Graph()
        g.add_edge(("L", 0), ("L", 1))
        g.add_edge(("R", 0), ("R", 1))
        assert not is_regular_bipartite(g)

    def test_degree_check(self):
        g = cycle_bipartite(4)
        assert is_regular_bipartite(g, 2)
        assert not is_regular_bipartite(g, 3)
