"""Unit tests for the unit-disk instance generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro import unit_disk_instance
from repro.generators import geometric_neighbourhoods, unit_disk_points


class TestPointsAndNeighbourhoods:
    def test_points_shape_and_range(self):
        pts = unit_disk_points(50, seed=1)
        assert pts.shape == (50, 2)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_points_reproducible(self):
        assert np.array_equal(unit_disk_points(10, seed=2), unit_disk_points(10, seed=2))

    def test_neighbourhoods_contain_self_first(self):
        pts = np.array([[0.0, 0.0], [0.05, 0.0], [0.9, 0.9]])
        nbrs = geometric_neighbourhoods(pts, 0.1)
        assert nbrs[0][0] == 0
        assert set(nbrs[0]) == {0, 1}
        assert nbrs[2] == [2]

    def test_neighbourhood_cap(self):
        pts = np.array([[0.0, 0.0], [0.01, 0.0], [0.02, 0.0], [0.03, 0.0]])
        nbrs = geometric_neighbourhoods(pts, 0.5, max_size=2)
        assert all(len(n) == 2 for n in nbrs)
        # Capping keeps the nearest points.
        assert nbrs[0] == [0, 1]

    def test_symmetry_without_cap(self):
        pts = unit_disk_points(30, seed=3)
        nbrs = geometric_neighbourhoods(pts, 0.25)
        for v, members in enumerate(nbrs):
            for u in members:
                assert v in nbrs[u]


class TestUnitDiskInstance:
    def test_sizes_and_bounds(self):
        problem = unit_disk_instance(40, radius=0.2, max_support=6, seed=5)
        assert problem.n_agents == 40
        assert problem.degree_bounds().max_resource_support <= 6

    def test_reproducibility(self):
        a = unit_disk_instance(20, seed=7)
        b = unit_disk_instance(20, seed=7)
        assert a == b

    def test_every_agent_constrained(self):
        problem = unit_disk_instance(30, radius=0.15, seed=8)
        assert all(problem.agent_resources(v) for v in problem.agents)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            unit_disk_instance(0)
        with pytest.raises(ValueError):
            unit_disk_instance(5, radius=0.0)
        with pytest.raises(ValueError):
            unit_disk_instance(5, weights="bogus")

    def test_random_weights(self):
        problem = unit_disk_instance(10, weights="random", seed=9)
        values = [v for _k, v in problem.consumption_items()]
        assert any(v != 1.0 for v in values)
