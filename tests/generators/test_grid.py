"""Unit tests for grid / torus instance generators."""

from __future__ import annotations

import pytest

from repro import grid_instance
from repro.generators import grid_neighbours, torus_instance


class TestGridNeighbours:
    def test_interior_cell_2d(self):
        nbrs = grid_neighbours((1, 1), (3, 3))
        assert set(nbrs) == {(0, 1), (2, 1), (1, 0), (1, 2)}

    def test_corner_cell_2d(self):
        nbrs = grid_neighbours((0, 0), (3, 3))
        assert set(nbrs) == {(1, 0), (0, 1)}

    def test_torus_wraps(self):
        nbrs = grid_neighbours((0, 0), (3, 3), torus=True)
        assert set(nbrs) == {(2, 0), (1, 0), (0, 2), (0, 1)}

    def test_one_dimensional(self):
        assert set(grid_neighbours((0,), (5,))) == {(1,)}
        assert set(grid_neighbours((0,), (5,), torus=True)) == {(1,), (4,)}

    def test_degenerate_axis(self):
        # A length-1 torus axis must not produce a self-loop.
        assert grid_neighbours((0,), (1,), torus=True) == []


class TestGridInstance:
    def test_sizes(self):
        problem = grid_instance((3, 4))
        assert problem.n_agents == 12
        assert problem.n_resources == 12
        assert problem.n_beneficiaries == 12

    def test_supports_are_closed_neighbourhoods(self):
        problem = grid_instance((3, 3))
        support = problem.resource_support(("r", (1, 1)))
        assert support == frozenset({(1, 1), (0, 1), (2, 1), (1, 0), (1, 2)})
        assert problem.beneficiary_support(("k", (0, 0))) == frozenset(
            {(0, 0), (1, 0), (0, 1)}
        )

    def test_degree_bounds_2d(self):
        bounds = grid_instance((5, 5)).degree_bounds()
        assert bounds.max_resource_support == 5
        assert bounds.max_beneficiary_support == 5
        assert bounds.max_resources_per_agent == 5
        assert bounds.max_beneficiaries_per_agent == 5

    def test_torus_is_regular(self):
        problem = torus_instance((4, 4))
        assert all(len(problem.resource_support(i)) == 5 for i in problem.resources)
        assert all(
            len(problem.agent_resources(v)) == 5 for v in problem.agents
        )

    def test_random_weights_are_reproducible(self):
        a = grid_instance((3, 3), weights="random", seed=11)
        b = grid_instance((3, 3), weights="random", seed=11)
        c = grid_instance((3, 3), weights="random", seed=12)
        assert a == b
        assert a != c

    def test_unit_weights_are_all_one(self):
        problem = grid_instance((3, 3))
        assert all(value == 1.0 for _key, value in problem.consumption_items())
        assert all(value == 1.0 for _key, value in problem.benefit_items())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            grid_instance(())
        with pytest.raises(ValueError):
            grid_instance((0, 3))
        with pytest.raises(ValueError):
            grid_instance((3, 3), weights="bogus")

    def test_three_dimensional_grid(self):
        problem = grid_instance((2, 2, 2))
        assert problem.n_agents == 8
        assert problem.degree_bounds().max_resource_support == 4  # 3 neighbours + self
