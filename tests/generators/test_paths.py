"""Unit tests for path and cycle instance generators."""

from __future__ import annotations

import pytest

from repro import cycle_instance, optimal_objective, path_instance


class TestPathInstance:
    def test_sizes(self):
        problem = path_instance(6)
        assert problem.n_agents == 6
        assert problem.n_resources == 5  # path edges
        assert problem.n_beneficiaries == 6

    def test_delta_vi_is_two(self):
        assert path_instance(8).degree_bounds().max_resource_support == 2

    def test_every_agent_constrained(self):
        problem = path_instance(5)
        assert all(problem.agent_resources(v) for v in problem.agents)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            path_instance(1)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            path_instance(4, weights="bogus")

    def test_random_weights_reproducible(self):
        assert path_instance(5, weights="random", seed=3) == path_instance(
            5, weights="random", seed=3
        )


class TestCycleInstance:
    def test_sizes(self):
        problem = cycle_instance(7)
        assert problem.n_agents == 7
        assert problem.n_resources == 7
        assert problem.n_beneficiaries == 7

    def test_known_optimum(self):
        # Unit cycle: x_v = 1/2 everywhere, each party sees 3 agents -> 1.5.
        assert optimal_objective(cycle_instance(9)) == pytest.approx(1.5)

    def test_delta_bounds(self):
        bounds = cycle_instance(10).degree_bounds()
        assert bounds.max_resource_support == 2
        assert bounds.max_beneficiary_support == 3
        assert bounds.max_resources_per_agent == 2
        assert bounds.max_beneficiaries_per_agent == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            cycle_instance(2)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            cycle_instance(5, weights="bogus")
