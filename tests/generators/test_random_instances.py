"""Unit tests for the random bounded-degree instance generator."""

from __future__ import annotations

import pytest

from repro import random_bounded_degree_instance


class TestRandomBoundedDegree:
    def test_reproducibility(self):
        a = random_bounded_degree_instance(20, seed=5)
        b = random_bounded_degree_instance(20, seed=5)
        c = random_bounded_degree_instance(20, seed=6)
        assert a == b
        assert a != c

    def test_respects_support_bounds(self):
        problem = random_bounded_degree_instance(
            30, max_resource_support=4, max_beneficiary_support=2, seed=1
        )
        bounds = problem.degree_bounds()
        assert bounds.max_resource_support <= 4
        assert bounds.max_beneficiary_support <= 2

    def test_every_agent_has_a_resource(self):
        problem = random_bounded_degree_instance(25, n_resources=5, seed=2)
        assert all(problem.agent_resources(v) for v in problem.agents)

    def test_explicit_counts(self):
        problem = random_bounded_degree_instance(
            10, n_resources=4, n_beneficiaries=3, seed=0
        )
        assert problem.n_agents == 10
        assert problem.n_beneficiaries == 3
        # extra budget resources may be appended to cover lonely agents
        assert problem.n_resources >= 4

    def test_unit_weights(self):
        problem = random_bounded_degree_instance(8, weights="unit", seed=4)
        assert all(v == 1.0 for _k, v in problem.consumption_items())
        assert all(v == 1.0 for _k, v in problem.benefit_items())

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            random_bounded_degree_instance(0)
        with pytest.raises(ValueError):
            random_bounded_degree_instance(5, max_resource_support=0)
        with pytest.raises(ValueError):
            random_bounded_degree_instance(5, weights="bogus")

    def test_support_bound_larger_than_agent_count_is_clipped(self):
        problem = random_bounded_degree_instance(3, max_resource_support=10, seed=9)
        assert problem.degree_bounds().max_resource_support <= 3
