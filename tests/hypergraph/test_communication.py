"""Unit tests for the communication hypergraph of an instance (Section 1.4)."""

from __future__ import annotations

import pytest

from repro import communication_hypergraph
from repro.hypergraph import BeneficiaryEdge, ResourceEdge


class TestFullVariant:
    def test_vertices_are_agents(self, cycle8):
        H = communication_hypergraph(cycle8)
        assert set(H.nodes) == set(cycle8.agents)

    def test_one_hyperedge_per_support(self, cycle8):
        H = communication_hypergraph(cycle8)
        assert H.n_edges == cycle8.n_resources + cycle8.n_beneficiaries
        for i in cycle8.resources:
            assert H.edge_members(ResourceEdge(i)) == cycle8.resource_support(i)
        for k in cycle8.beneficiaries:
            assert H.edge_members(BeneficiaryEdge(k)) == cycle8.beneficiary_support(k)

    def test_adjacency_iff_shared_support(self, tiny_instance):
        H = communication_hypergraph(tiny_instance)
        assert H.neighbours("v1") == frozenset({"v2"})

    def test_edge_label_wrappers(self):
        assert ResourceEdge("i").resource == "i"
        assert BeneficiaryEdge("k").beneficiary == "k"
        assert ResourceEdge("x") != BeneficiaryEdge("x")


class TestCollaborationObliviousVariant:
    def test_only_resource_edges(self, cycle8):
        H = communication_hypergraph(cycle8, collaboration_oblivious=True)
        assert H.n_edges == cycle8.n_resources
        assert all(isinstance(label, ResourceEdge) for label in H.edge_labels())

    def test_oblivious_distances_can_be_larger(self, path6):
        full = communication_hypergraph(path6)
        oblivious = communication_hypergraph(path6, collaboration_oblivious=True)
        # In the full graph, beneficiary hyperedges {v-1, v, v+1} connect
        # agents two steps apart; dropping them cannot shrink any distance.
        for u in path6.agents:
            for v in path6.agents:
                assert oblivious.distance(u, v) >= full.distance(u, v)

    def test_isolated_agent_when_no_resources(self):
        from repro import MaxMinLP

        problem = MaxMinLP(
            ["a", "b"], {("i", "a"): 1.0}, {("k", "a"): 1.0, ("k", "b"): 1.0},
            validate=False,
        )
        H = communication_hypergraph(problem, collaboration_oblivious=True)
        assert H.neighbours("b") == frozenset()
        full = communication_hypergraph(problem)
        assert full.neighbours("b") == frozenset({"a"})
