"""Unit tests for the relative growth γ(r) machinery (Section 5)."""

from __future__ import annotations

import pytest

from repro import (
    communication_hypergraph,
    cycle_instance,
    grid_instance,
    growth_profile,
    relative_growth,
    theorem3_ratio_bound,
)
from repro.hypergraph import Hypergraph


class TestRelativeGrowth:
    def test_growth_on_torus_cycle(self):
        # The communication graph of the unit cycle instance connects each
        # agent to the 2 agents on each side (resources + beneficiaries), so
        # |B(v, r)| = 4r + 1 until wrap-around and γ(r) = (4r+5)/(4r+1).
        problem = cycle_instance(30)
        H = communication_hypergraph(problem)
        assert relative_growth(H, 0) == pytest.approx(5.0)
        assert relative_growth(H, 1) == pytest.approx(9.0 / 5.0)
        assert relative_growth(H, 2) == pytest.approx(13.0 / 9.0)

    def test_growth_decreases_on_grid(self):
        problem = grid_instance((7, 7), torus=True)
        H = communication_hypergraph(problem)
        gammas = [relative_growth(H, r) for r in range(3)]
        assert gammas[0] > gammas[1] > gammas[2] >= 1.0

    def test_negative_radius_rejected(self):
        h = Hypergraph(edges={"e": ["a", "b"]})
        with pytest.raises(ValueError):
            relative_growth(h, -1)

    def test_growth_of_disconnected_graph_is_finite(self):
        h = Hypergraph(edges={"e1": ["a", "b"], "e2": ["c", "d"]})
        assert relative_growth(h, 0) == pytest.approx(2.0)
        assert relative_growth(h, 1) == pytest.approx(1.0)


class TestGrowthProfile:
    def test_profile_matches_pointwise_computation(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        profile = growth_profile(H, 3)
        for r in range(4):
            assert profile.gamma[r] == pytest.approx(relative_growth(H, r))

    def test_ball_size_extremes(self, cycle8):
        H = communication_hypergraph(cycle8)
        profile = growth_profile(H, 2)
        assert profile.min_ball_sizes[0] == 1
        assert profile.max_ball_sizes[0] == 1
        # On the symmetric cycle all balls of a given radius have equal size.
        assert profile.min_ball_sizes[1] == profile.max_ball_sizes[1]

    def test_ratio_bound_accessor(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        profile = growth_profile(H, 3)
        assert profile.ratio_bound(2) == pytest.approx(profile.gamma[1] * profile.gamma[2])
        with pytest.raises(ValueError):
            profile.ratio_bound(0)
        with pytest.raises(ValueError):
            profile.ratio_bound(10)

    def test_negative_max_radius_rejected(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        with pytest.raises(ValueError):
            growth_profile(H, -1)


class TestTheorem3Bound:
    def test_bound_equals_product_of_growths(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        assert theorem3_ratio_bound(H, 2) == pytest.approx(
            relative_growth(H, 1) * relative_growth(H, 2)
        )

    def test_requires_positive_radius(self, grid4x4):
        H = communication_hypergraph(grid4x4)
        with pytest.raises(ValueError):
            theorem3_ratio_bound(H, 0)

    def test_bound_tends_to_one_on_large_torus(self):
        # γ(r) = 1 + Θ(1/r) on the (1-dimensional) torus, so the bound
        # approaches 1 as R grows -- the "local approximation scheme" regime.
        problem = cycle_instance(60)
        H = communication_hypergraph(problem)
        bounds = [theorem3_ratio_bound(H, R) for R in (1, 2, 3, 4)]
        assert bounds[0] > bounds[1] > bounds[2] > bounds[3]
        assert bounds[3] < 2.0
