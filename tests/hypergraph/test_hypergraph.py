"""Unit tests for the Hypergraph data structure."""

from __future__ import annotations

import pytest

from repro import Hypergraph


def triangle_path():
    """Two triangles joined by a bridge hyperedge: a small hand-checkable graph."""
    return Hypergraph(
        nodes=["a", "b", "c", "d", "e", "f"],
        edges={
            "t1": ["a", "b", "c"],
            "bridge": ["c", "d"],
            "t2": ["d", "e", "f"],
        },
    )


class TestConstruction:
    def test_nodes_and_edges(self):
        h = triangle_path()
        assert h.n_nodes == 6
        assert h.n_edges == 3
        assert set(h.edge_labels()) == {"t1", "bridge", "t2"}
        assert h.edge_members("t1") == frozenset({"a", "b", "c"})

    def test_nodes_only_in_edges_are_added(self):
        h = Hypergraph(nodes=["x"], edges={"e": ["y", "z"]})
        assert set(h.nodes) == {"x", "y", "z"}

    def test_empty_edge_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            Hypergraph(edges={"e": []})

    def test_duplicate_edge_label_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Hypergraph(edges=[("e", ["a"]), ("e", ["b"])])

    def test_singleton_edge_contributes_no_adjacency(self):
        h = Hypergraph(edges={"e": ["a"], "f": ["a", "b"]})
        assert h.neighbours("a") == frozenset({"b"})

    def test_incident_edges(self):
        h = triangle_path()
        assert h.incident_edges("c") == frozenset({"t1", "bridge"})
        assert h.incident_edges("e") == frozenset({"t2"})


class TestAdjacencyAndDegrees:
    def test_neighbours(self):
        h = triangle_path()
        assert h.neighbours("a") == frozenset({"b", "c"})
        assert h.neighbours("c") == frozenset({"a", "b", "d"})

    def test_degree_and_max_degree(self):
        h = triangle_path()
        assert h.degree("a") == 2
        assert h.degree("c") == 3
        assert h.max_degree() == 3

    def test_has_node(self):
        h = triangle_path()
        assert h.has_node("a")
        assert not h.has_node("zzz")


class TestDistances:
    def test_distances_from(self):
        h = triangle_path()
        dist = h.distances_from("a")
        assert dist == {"a": 0, "b": 1, "c": 1, "d": 2, "e": 3, "f": 3}

    def test_distances_with_cutoff(self):
        h = triangle_path()
        dist = h.distances_from("a", cutoff=1)
        assert set(dist) == {"a", "b", "c"}

    def test_distance_pairs(self):
        h = triangle_path()
        assert h.distance("a", "a") == 0
        assert h.distance("a", "f") == 3
        assert h.distance("f", "a") == 3

    def test_distance_disconnected(self):
        h = Hypergraph(edges={"e1": ["a", "b"], "e2": ["c", "d"]})
        assert h.distance("a", "c") == float("inf")

    def test_unknown_vertex_raises(self):
        h = triangle_path()
        with pytest.raises(KeyError):
            h.distances_from("zzz")
        with pytest.raises(KeyError):
            h.distance("zzz", "zzz")


class TestBalls:
    def test_ball_contents(self):
        h = triangle_path()
        assert h.ball("a", 0) == frozenset({"a"})
        assert h.ball("a", 1) == frozenset({"a", "b", "c"})
        assert h.ball("a", 2) == frozenset({"a", "b", "c", "d"})
        assert h.ball("a", 10) == frozenset(h.nodes)

    def test_ball_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            triangle_path().ball("a", -1)

    def test_ball_sizes_are_cumulative(self):
        h = triangle_path()
        sizes = h.ball_sizes("a", 3)
        assert sizes == [1, 3, 4, 6]
        assert sizes == [len(h.ball("a", r)) for r in range(4)]


class TestGlobalProperties:
    def test_connectivity(self):
        assert triangle_path().is_connected()
        assert not Hypergraph(edges={"e1": ["a", "b"], "e2": ["c", "d"]}).is_connected()
        assert Hypergraph().is_connected()

    def test_connected_components(self):
        h = Hypergraph(edges={"e1": ["a", "b"], "e2": ["c", "d"]})
        components = h.connected_components()
        assert sorted(map(sorted, components)) == [["a", "b"], ["c", "d"]]

    def test_diameter(self):
        assert triangle_path().diameter() == 3
        assert Hypergraph(nodes=["a"]).diameter() == 0
        assert (
            Hypergraph(edges={"e1": ["a", "b"], "e2": ["c", "d"]}).diameter()
            == float("inf")
        )

    def test_induced_subhypergraph(self):
        h = triangle_path()
        sub = h.induced_subhypergraph({"a", "b", "c", "d"})
        assert set(sub.nodes) == {"a", "b", "c", "d"}
        assert set(sub.edge_labels()) == {"t1", "bridge"}

    def test_to_networkx(self):
        g = triangle_path().to_networkx()
        assert g.number_of_nodes() == 6
        assert g.has_edge("a", "b")
        assert not g.has_edge("a", "d")

    def test_primal_adjacency(self):
        adj = triangle_path().primal_adjacency()
        assert adj["c"] == frozenset({"a", "b", "d"})
