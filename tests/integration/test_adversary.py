"""Integration tests for the Theorem 1 adversary harness (Section 4)."""

from __future__ import annotations

import pytest

from repro.lowerbound import (
    build_lower_bound_instance,
    greedy_uniform_algorithm,
    local_averaging_algorithm,
    run_adversary,
    safe_algorithm,
)


class TestAdversaryAgainstSafeAlgorithm:
    def test_report_is_consistent(self, lb_construction):
        report = run_adversary(safe_algorithm, lb_construction)
        assert report.algorithm == "safe_algorithm"
        assert report.witness_objective == pytest.approx(1.0)
        assert report.optimum_on_Sprime >= 1.0 - 1e-9
        assert report.objective_on_Sprime > 0
        assert report.measured_ratio >= 1.0
        assert report.finite_R_bound <= report.theorem1_bound + 1e-12

    def test_safe_algorithm_loses_at_least_the_finite_R_bound(self, lb_construction):
        # On the adversarial instance the safe algorithm gives every agent
        # 1/(d+1) while the optimum is at least 1; Theorem 1's finite-R
        # analysis promises a gap of at least the certified bound.
        report = run_adversary(safe_algorithm, lb_construction)
        assert report.measured_ratio >= report.finite_R_bound - 1e-9

    def test_measured_ratio_close_to_delta_over_two_for_larger_delta(self):
        construction = build_lower_bound_instance(4, 2, 1, seed=3)
        report = run_adversary(safe_algorithm, construction)
        # Corollary 2 regime: ratio at least Δ_I^V/2 = 2 asymptotically; the
        # finite construction certifies a bit less but must beat 1.5.
        assert report.measured_ratio >= 1.5


class TestAdversaryAgainstOtherAlgorithms:
    def test_greedy_uniform_also_bounded_away_from_optimal(self, lb_construction):
        report = run_adversary(greedy_uniform_algorithm, lb_construction)
        assert report.measured_ratio >= report.finite_R_bound - 1e-9

    def test_local_averaging_cannot_beat_theorem1_here(self, lb_construction):
        # The averaging algorithm with R = 1 is also a local algorithm, so it
        # is subject to the same lower bound on this construction.
        algorithm = local_averaging_algorithm(1)
        report = run_adversary(algorithm, lb_construction, name="averaging-R1")
        assert report.algorithm == "averaging-R1"
        assert report.measured_ratio >= report.finite_R_bound - 1e-6

    def test_precomputed_subinstance_is_reused(self, lb_construction):
        x = safe_algorithm(lb_construction.problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        report = run_adversary(safe_algorithm, lb_construction, precomputed=adv)
        assert report.optimum_on_Sprime >= 1.0 - 1e-9


class TestConstructionScaling:
    def test_larger_R_certifies_a_tighter_bound(self):
        small = build_lower_bound_instance(3, 2, 1, R=2, seed=0)
        large = build_lower_bound_instance(3, 2, 1, R=3, seed=0)
        assert large.finite_R_bound() > small.finite_R_bound()
        assert large.problem.n_agents > small.problem.n_agents

    def test_theorem1_parameters_with_type_II_parties(self):
        construction = build_lower_bound_instance(2, 3, 1, seed=2)
        report = run_adversary(safe_algorithm, construction)
        assert report.measured_ratio >= report.finite_R_bound - 1e-9
