"""End-to-end integration tests across subsystems.

These tests exercise the full pipelines the examples and benchmarks rely on:
application model -> max-min LP -> algorithms (central and distributed) ->
interpretation, and the Theorem 3 story (growth bound tightening with R) on
a realistic deployment.
"""

from __future__ import annotations

import pytest

from repro import (
    approximation_ratio,
    communication_hypergraph,
    grid_instance,
    growth_profile,
    local_averaging_solution,
    optimal_solution,
    safe_approximation_guarantee,
    safe_solution,
    unit_disk_instance,
)
from repro.analysis import compare_algorithms, radius_sweep
from repro.apps import random_sensor_network
from repro.distributed import LocalAveragingProgram, SafeProgram, SynchronousSimulator


class TestSensorNetworkPipeline:
    def test_full_pipeline(self, sensor_network):
        problem = sensor_network.to_maxmin_lp()
        optimum = optimal_solution(problem)

        # Central algorithms.
        comparisons = compare_algorithms(
            problem,
            {
                "safe": safe_solution,
                "averaging-R1": lambda p: local_averaging_solution(p, 1).x,
            },
            optimum=optimum.objective,
        )
        assert all(c.feasible for c in comparisons.values())
        assert comparisons["safe"].ratio <= safe_approximation_guarantee(problem) + 1e-9

        # Distributed execution of the safe algorithm matches the central one.
        sim_result = SynchronousSimulator(problem).run(SafeProgram())
        assert sim_result.objective == pytest.approx(
            comparisons["safe"].objective, abs=1e-9
        )

        # Interpretation back in network terms.
        report = sensor_network.interpret_solution(problem, optimum.x)
        assert report.min_area_rate == pytest.approx(optimum.objective, abs=1e-6)
        assert report.lifetime >= 1.0 - 1e-9
        assert max(report.device_usage.values()) <= 1.0 + 1e-6

    def test_distributed_averaging_on_sensor_network(self, sensor_network):
        problem = sensor_network.to_maxmin_lp()
        central = local_averaging_solution(problem, 1)
        distributed = SynchronousSimulator(problem).run(LocalAveragingProgram(1))
        for v in problem.agents:
            assert distributed.x[v] == pytest.approx(central.x[v], abs=1e-9)
        assert distributed.feasible


class TestTheorem3Story:
    def test_bound_tightens_with_radius_on_torus(self):
        problem = grid_instance((6, 6), torus=True)
        H = communication_hypergraph(problem)
        profile = growth_profile(H, 3)
        bounds = [profile.ratio_bound(R) for R in (1, 2, 3)]
        assert bounds[0] >= bounds[1] >= bounds[2] >= 1.0

    def test_radius_sweep_improves_with_radius_on_torus(self):
        problem = grid_instance((6, 6), torus=True)
        rows = radius_sweep(problem, [1, 2])
        # The measured ratio and the certified bound both improve sharply
        # from R = 1 to R = 2 (the local-approximation-scheme regime of
        # Theorem 3); with R = 2 the algorithm is already within a factor
        # ~1.4 of the optimum on this instance.
        assert rows[1]["ratio"] < rows[0]["ratio"]
        assert rows[1]["instance_bound"] < rows[0]["instance_bound"]
        assert rows[-1]["ratio"] <= 1.6
        assert all(row["ratio"] <= row["gamma_bound"] + 1e-6 for row in rows)

    def test_unit_disk_instance_behaves_like_bounded_growth(self):
        problem = unit_disk_instance(30, radius=0.25, max_support=6, seed=11)
        optimum = optimal_solution(problem).objective
        result = local_averaging_solution(problem, 2)
        ratio = approximation_ratio(optimum, result.objective)
        assert ratio <= result.proven_ratio_bound + 1e-6


class TestLocalityOperationally:
    def test_per_node_cost_independent_of_network_size(self):
        # The LOCALITY claim of Section 1.1: the per-node communication of a
        # local algorithm does not grow with the instance; total traffic
        # scales linearly.  (Tori of side >= 5 are used so that the radius-2
        # neighbourhoods do not wrap around and per-node degrees coincide.)
        small = grid_instance((5, 5), torus=True)
        large = grid_instance((9, 9), torus=True)
        per_node = {}
        for name, problem in (("small", small), ("large", large)):
            result = SynchronousSimulator(problem).run(SafeProgram())
            per_node[name] = result.total_payload / problem.n_agents
            assert result.rounds == 1
        assert per_node["large"] == pytest.approx(per_node["small"], rel=0.01)

    def test_rounds_depend_only_on_radius(self):
        for shape in ((4, 4), (6, 6)):
            problem = grid_instance(shape, torus=True)
            result = SynchronousSimulator(problem).run(LocalAveragingProgram(1))
            assert result.rounds == 3
