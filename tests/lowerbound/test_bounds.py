"""Unit tests for the closed-form bounds of Theorem 1 / Corollary 2."""

from __future__ import annotations

import pytest

from repro.lowerbound import (
    corollary2_bound,
    finite_R_bound,
    safe_upper_bound,
    theorem1_bound,
)


class TestTheorem1Bound:
    def test_values_from_the_statement(self):
        # Δ_I^V/2 + 1/2 - 1/(2Δ_K^V - 2)
        assert theorem1_bound(3, 2) == pytest.approx(3 / 2 + 1 / 2 - 1 / 2)
        assert theorem1_bound(3, 3) == pytest.approx(1.5 + 0.5 - 0.25)
        assert theorem1_bound(4, 4) == pytest.approx(2.0 + 0.5 - 1 / 6)

    def test_trivial_corner(self):
        assert theorem1_bound(2, 2) == pytest.approx(1.0)

    def test_monotone_in_delta_vi(self):
        assert theorem1_bound(5, 3) > theorem1_bound(4, 3) > theorem1_bound(3, 3)

    def test_monotone_in_delta_vk(self):
        assert theorem1_bound(3, 5) > theorem1_bound(3, 4) > theorem1_bound(3, 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            theorem1_bound(1, 2)
        with pytest.raises(ValueError):
            theorem1_bound(2, 1)


class TestCorollary2Bound:
    def test_value(self):
        assert corollary2_bound(3) == pytest.approx(1.5)
        assert corollary2_bound(6) == pytest.approx(3.0)

    def test_requires_delta_above_two(self):
        with pytest.raises(ValueError):
            corollary2_bound(2)

    def test_matches_theorem1_with_large_delta_vk_up_to_half(self):
        # Theorem 1 tends to Δ_I^V/2 + 1/2 as Δ_K^V grows; Corollary 2 drops
        # the +1/2 because it restricts the coefficients further.
        assert theorem1_bound(5, 1000) == pytest.approx(
            corollary2_bound(5) + 0.5, abs=1e-3
        )


class TestFiniteRBound:
    def test_converges_to_theorem1_from_below(self):
        d, D = 2, 2
        limit = theorem1_bound(d + 1, D + 1)
        values = [finite_R_bound(d, D, R) for R in (1, 2, 3, 5, 8)]
        assert all(values[j] <= values[j + 1] + 1e-12 for j in range(len(values) - 1))
        assert values[-1] == pytest.approx(limit, abs=1e-3)
        assert all(v <= limit + 1e-12 for v in values)

    def test_requires_dd_product_above_one(self):
        with pytest.raises(ValueError):
            finite_R_bound(1, 1, 3)
        with pytest.raises(ValueError):
            finite_R_bound(0, 2, 3)
        with pytest.raises(ValueError):
            finite_R_bound(2, 2, 0)

    def test_corollary2_case(self):
        # D = 1 reproduces the Corollary 2 limit Δ_I^V/2 = (d+1)/2.
        d = 3
        assert finite_R_bound(d, 1, 12) == pytest.approx((d + 1) / 2, abs=1e-2)


class TestSafeUpperBound:
    def test_value_and_gap(self):
        assert safe_upper_bound(4) == 4.0
        # The safe algorithm is within a factor ~2 of the lower bound.
        assert safe_upper_bound(4) < 2 * theorem1_bound(4, 3) + 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            safe_upper_bound(0)
