"""Unit tests for the Section 4 lower-bound construction (instances S and S′)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro import ConstructionError, optimal_objective, safe_solution
from repro.generators import girth
from repro.hypergraph import communication_hypergraph
from repro.lowerbound import build_lower_bound_instance


def incidence_graph(problem):
    """Bipartite agent--hyperedge incidence graph of an instance's hypergraph.

    The instance (hypergraph) is *tree-like* in the paper's sense exactly
    when this incidence graph is a forest.
    """
    g = nx.Graph()
    for i in problem.resources:
        for v in problem.resource_support(i):
            g.add_edge(("edge", "res", i), ("agent", v))
    for k in problem.beneficiaries:
        for v in problem.beneficiary_support(k):
            g.add_edge(("edge", "ben", k), ("agent", v))
    for v in problem.agents:
        g.add_node(("agent", v))
    return g


class TestInstanceS:
    def test_structure_summary(self, lb_construction):
        summary = lb_construction.structure_summary()
        assert summary["d"] == 2 and summary["D"] == 1
        assert summary["template_degree"] == 4
        assert summary["template_girth"] >= summary["required_girth"]
        assert summary["hypertree_height"] == 3
        assert summary["leaves_per_tree"] == 4
        assert summary["agents"] == summary["template_vertices"] * summary["hypertree_nodes"]
        # One type III hyperedge per template edge.
        assert summary["type_III_hyperedges"] == lb_construction.template.number_of_edges()

    def test_paper_restrictions_hold(self, lb_construction):
        # Theorem 1: a_iv ∈ {0,1}, Δ_V^I = 1 and Δ_V^K = 1.
        problem = lb_construction.problem
        assert all(value == 1.0 for _key, value in problem.consumption_items())
        bounds = problem.degree_bounds()
        assert bounds.max_resources_per_agent == 1
        assert bounds.max_beneficiaries_per_agent == 1
        assert bounds.max_resource_support == lb_construction.delta_VI
        assert bounds.max_beneficiary_support == lb_construction.delta_VK

    def test_corollary2_coefficients_are_binary_when_D_is_one(self, lb_construction):
        assert lb_construction.D == 1
        assert all(
            value == 1.0 for _key, value in lb_construction.problem.benefit_items()
        )

    def test_type_II_coefficients_are_one_over_D(self):
        construction = build_lower_bound_instance(2, 3, 1, seed=1)
        problem = construction.problem
        type_II = [k for k in problem.beneficiaries if k[0] == "II"]
        assert type_II
        for k in type_II:
            for v in problem.beneficiary_support(k):
                assert problem.benefit(k, v) == pytest.approx(1.0 / construction.D)

    def test_leaf_partner_is_a_fixed_point_free_involution(self, lb_construction):
        partner = lb_construction.leaf_partner
        all_leaves = [leaf for q in lb_construction.template.nodes for leaf in lb_construction.leaves[q]]
        assert set(partner) == set(all_leaves)
        for leaf, other in partner.items():
            assert other != leaf
            assert partner[other] == leaf

    def test_partner_leaves_live_in_adjacent_trees(self, lb_construction):
        for leaf, other in lb_construction.leaf_partner.items():
            q, _node = leaf
            w, _node2 = other
            assert q != w
            assert lb_construction.template.has_edge(q, w)

    def test_invalid_parameters(self):
        with pytest.raises(ConstructionError):
            build_lower_bound_instance(1, 3, 1)
        with pytest.raises(ConstructionError):
            build_lower_bound_instance(2, 2, 1)  # dD = 1
        with pytest.raises(ConstructionError):
            build_lower_bound_instance(3, 2, 0)
        with pytest.raises(ConstructionError):
            build_lower_bound_instance(3, 2, 2, R=1)  # needs R > r

    def test_explicit_template_is_validated(self):
        import networkx as nx

        bad = nx.Graph()
        bad.add_edge(("L", 0), ("R", 0))
        with pytest.raises(ConstructionError):
            build_lower_bound_instance(3, 2, 1, template=bad)

    def test_bound_accessors(self, lb_construction):
        assert lb_construction.delta_VI == 3
        assert lb_construction.delta_VK == 2
        assert lb_construction.theorem1_bound() == pytest.approx(1.5)
        assert lb_construction.finite_R_bound() <= 1.5


class TestAdversary:
    def test_delta_values_sum_to_zero(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        deltas = lb_construction.delta_values(x)
        assert sum(deltas.values()) == pytest.approx(0.0, abs=1e-9)
        p = lb_construction.select_p(x)
        assert deltas[p] >= -1e-12

    def test_adversarial_agents_contain_tree_p(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        p = lb_construction.select_p(x)
        agents = lb_construction.adversarial_agents(p)
        assert set(lb_construction.tree_nodes[p]) <= agents

    def test_subinstance_is_tree_like(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        assert nx.is_forest(incidence_graph(adv.subproblem))

    def test_witness_is_feasible_and_tight(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        sub = adv.subproblem
        witness_vec = sub.to_array(adv.witness)
        assert sub.is_feasible(witness_vec, tol=1e-9)
        # Every resource is used exactly once and every party receives exactly 1.
        usage = sub.resource_usage(witness_vec)
        benefits = sub.benefits(witness_vec)
        assert usage.max() == pytest.approx(1.0)
        assert usage.min() == pytest.approx(1.0)
        assert benefits.min() == pytest.approx(1.0)
        assert benefits.max() == pytest.approx(1.0)
        assert adv.witness_objective == pytest.approx(1.0)

    def test_witness_alternates_with_distance_parity(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        H = communication_hypergraph(adv.subproblem)
        dist = H.distances_from(adv.root)
        for v, value in adv.witness.items():
            assert value == (1.0 if dist[v] % 2 == 0 else 0.0)

    def test_radius_r_views_agree_between_S_and_S_prime(self, lb_construction):
        # The key locality argument of Section 4.6: the radius-r view of any
        # node of T_p is identical in S and S'.  We check the ball membership
        # and the local coefficients.
        problem = lb_construction.problem
        x = safe_solution(problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        sub = adv.subproblem
        H_S = lb_construction.communication()
        H_sub = communication_hypergraph(sub)
        r = lb_construction.r
        for v in lb_construction.tree_nodes[adv.p]:
            ball_S = H_S.ball(v, r)
            ball_sub = H_sub.ball(v, r)
            assert ball_S == ball_sub
            assert problem.agent_resources(v) == sub.agent_resources(v)
            assert problem.agent_beneficiaries(v) == sub.agent_beneficiaries(v)

    def test_optimum_of_subinstance_at_least_one(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        adv = lb_construction.build_adversarial_subinstance(x)
        assert optimal_objective(adv.subproblem) >= 1.0 - 1e-9
