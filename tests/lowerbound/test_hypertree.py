"""Unit tests for complete (d, D)-ary hypertrees (Section 4.2)."""

from __future__ import annotations

import pytest

from repro.lowerbound import complete_hypertree, level_size


class TestLevelSizeFormula:
    @pytest.mark.parametrize("d,D", [(1, 2), (2, 1), (2, 2), (2, 3), (3, 2)])
    def test_matches_paper_formula(self, d, D):
        # (dD)^{ℓ/2} for even ℓ and (dD)^{(ℓ-1)/2}·d for odd ℓ.
        tree = complete_hypertree(d, D, 5)
        for level in range(6):
            assert len(tree.nodes_at_level(level)) == level_size(d, D, level)

    def test_leaf_count_matches_template_degree(self):
        # height 2R-1 gives d^R D^{R-1} leaves (the degree of Q).
        d, D, R = 2, 3, 2
        tree = complete_hypertree(d, D, 2 * R - 1)
        assert len(tree.leaves) == d**R * D ** (R - 1)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            level_size(2, 2, -1)


class TestStructure:
    def test_height_zero_is_single_node(self):
        tree = complete_hypertree(2, 3, 0)
        assert tree.nodes == ((),)
        assert tree.edges == ()
        assert tree.leaves == ((),)
        assert tree.root == ()

    def test_edge_types_alternate_by_level(self):
        tree = complete_hypertree(2, 3, 4)
        for edge in tree.edges:
            parent_level = tree.levels[edge.parent]
            expected_kind = "I" if parent_level % 2 == 0 else "II"
            assert edge.kind == expected_kind
            branching = 2 if expected_kind == "I" else 3
            assert len(edge.children) == branching
            for child in edge.children:
                assert tree.levels[child] == parent_level + 1

    def test_every_non_root_node_has_exactly_one_parent_edge(self):
        tree = complete_hypertree(2, 2, 3)
        child_count = {}
        for edge in tree.edges:
            for child in edge.children:
                child_count[child] = child_count.get(child, 0) + 1
        non_roots = [v for v in tree.nodes if v != ()]
        assert set(child_count) == set(non_roots)
        assert all(count == 1 for count in child_count.values())

    def test_every_node_in_at_most_two_edges(self):
        # One as a child, possibly one as a parent -- this is what gives the
        # construction Δ_V^I = Δ_V^K = 1.
        tree = complete_hypertree(3, 2, 5)
        incident = {v: 0 for v in tree.nodes}
        for edge in tree.edges:
            for v in edge.members:
                incident[v] += 1
        assert max(incident.values()) <= 2

    def test_node_ids_encode_paths(self):
        tree = complete_hypertree(2, 2, 2)
        assert (0,) in tree.nodes
        assert (1, 0) in tree.nodes
        assert tree.levels[(1, 0)] == 2

    def test_total_node_count(self):
        d, D, height = 2, 3, 5
        tree = complete_hypertree(d, D, height)
        assert tree.n_nodes == sum(level_size(d, D, level) for level in range(height + 1))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            complete_hypertree(0, 1, 2)
        with pytest.raises(ValueError):
            complete_hypertree(1, 0, 2)
        with pytest.raises(ValueError):
            complete_hypertree(1, 1, -1)
