"""Unit tests for the executable Section 4.6 proof trace."""

from __future__ import annotations

import pytest

from repro import safe_solution
from repro.lowerbound import (
    build_lower_bound_instance,
    local_averaging_algorithm,
    run_adversary,
    safe_algorithm,
    section46_trace,
)


class TestLevelSums:
    def test_safe_solution_level_sums(self, lb_construction):
        # Safe gives 1/(d+1) = 1/3 to every agent; level sizes are 1, 2, 2, 4.
        x = safe_solution(lb_construction.problem)
        trace = section46_trace(lb_construction, x)
        assert trace.level_sums == pytest.approx((1 / 3, 2 / 3, 2 / 3, 4 / 3))
        assert trace.delta_p == pytest.approx(0.0)
        assert trace.feasibility_respected

    def test_resource_inequalities_tight_for_safe(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        trace = section46_trace(lb_construction, x)
        # S(0)+S(1) = 1 <= 1 and S(2)+S(3) = 2 <= dD = 2 (both tight).
        expected = ((1.0, 1.0), (2.0, 2.0))
        for (lhs, rhs), (exp_lhs, exp_rhs) in zip(trace.resource_inequalities, expected):
            assert lhs == pytest.approx(exp_lhs)
            assert rhs == pytest.approx(exp_rhs)

    def test_explicit_p_can_be_forced(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        some_q = next(iter(lb_construction.template.nodes))
        trace = section46_trace(lb_construction, x, p=some_q)
        assert trace.p == some_q

    def test_infeasible_solution_detected(self, lb_construction):
        x = {v: 1.0 for v in lb_construction.problem.agents}
        trace = section46_trace(lb_construction, x)
        assert not trace.feasibility_respected

    def test_zero_solution_certifies_unbounded_ratio(self, lb_construction):
        x = {v: 0.0 for v in lb_construction.problem.agents}
        trace = section46_trace(lb_construction, x)
        assert trace.certified_alpha == float("inf")
        assert trace.feasibility_respected


class TestCertifiedAlpha:
    def test_safe_certified_alpha_matches_theorem1(self, lb_construction):
        # For the uniform safe solution the counting argument certifies
        # exactly the Theorem 1 value Δ_I^V/2 + 1/2 − 1/(2Δ_K^V−2) = 1.5.
        x = safe_solution(lb_construction.problem)
        trace = section46_trace(lb_construction, x)
        assert trace.certified_alpha == pytest.approx(
            lb_construction.theorem1_bound()
        )

    def test_certified_alpha_is_a_valid_lower_bound_on_measured_ratio(self, lb_construction):
        # The counting argument can never certify more than the adversary
        # actually measures (it is a relaxation of the same chain).
        for name, algorithm in (
            ("safe", safe_algorithm),
            ("averaging", local_averaging_algorithm(1)),
        ):
            x = dict(algorithm(lb_construction.problem))
            trace = section46_trace(lb_construction, x)
            report = run_adversary(algorithm, lb_construction, name=name)
            assert report.measured_ratio >= trace.certified_alpha - 1e-6

    def test_certified_alpha_at_least_one(self, lb_construction):
        x = safe_solution(lb_construction.problem)
        assert section46_trace(lb_construction, x).certified_alpha >= 1.0

    def test_larger_construction(self):
        construction = build_lower_bound_instance(2, 3, 1, seed=1)
        x = safe_solution(construction.problem)
        trace = section46_trace(construction, x)
        assert trace.feasibility_respected
        assert len(trace.level_sums) == 2 * construction.R
        assert trace.certified_alpha >= 1.0
