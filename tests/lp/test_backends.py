"""Unit tests for backend registration and dispatch."""

from __future__ import annotations

import pytest

from repro import SolverError
from repro.lp import DEFAULT_BACKEND, LinearProgram, LPStatus, available_backends, solve_lp


class TestDispatch:
    def test_available_backends(self):
        names = available_backends()
        assert "scipy" in names
        assert "simplex" in names
        assert DEFAULT_BACKEND in names

    def test_unknown_backend_raises(self):
        lp = LinearProgram(c=[1.0])
        with pytest.raises(SolverError, match="unknown LP backend"):
            solve_lp(lp, backend="does-not-exist")

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_basic_solve(self, backend):
        lp = LinearProgram(c=[-1.0], A_ub=[[1.0]], b_ub=[2.0])
        result = solve_lp(lp, backend=backend)
        assert result.is_optimal
        assert result.objective == pytest.approx(-2.0)
        assert result.backend == backend

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_infeasible_status(self, backend):
        lp = LinearProgram(c=[1.0], A_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])
        assert solve_lp(lp, backend=backend).status is LPStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", ["scipy", "simplex"])
    def test_unbounded_status(self, backend):
        lp = LinearProgram(c=[-1.0])
        assert solve_lp(lp, backend=backend).status is LPStatus.UNBOUNDED

    @pytest.mark.parametrize("status", [1, 4, 99])
    def test_unknown_scipy_status_raises_with_context(self, monkeypatch, status):
        """Unexpected scipy statuses raise instead of returning a silent ERROR."""
        from scipy.optimize import OptimizeResult

        from repro.lp import backends

        fake = OptimizeResult(status=status, message="synthetic failure", x=None)
        monkeypatch.setattr(backends, "linprog", lambda *args, **kwargs: fake)
        lp = LinearProgram(c=[1.0, 2.0], A_ub=[[1.0, 1.0]], b_ub=[1.0])
        with pytest.raises(SolverError) as excinfo:
            solve_lp(lp, backend="scipy")
        message = str(excinfo.value)
        assert "scipy" in message
        assert f"status {status}" in message
        assert "2 variables" in message
        assert "1 inequality" in message
