"""Unit tests for the batched LP solving layer (:mod:`repro.lp.batch`)."""

from __future__ import annotations

import math

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import SolverError
from repro.lp import (
    CompiledMaxMin,
    LinearProgram,
    LPStatus,
    count_highs_calls,
    maxmin_to_lp,
    solve_lp,
    solve_lp_batch,
    solve_max_min,
    solve_max_min_batch,
    solve_max_min_bisection,
    stack_block_diagonal,
)
from repro.lp.batch import BatchSolveStats
from repro.lp.maxmin import solve_maxmin_buffer_batch


def _optimal_lp(k: float = 1.0) -> LinearProgram:
    """max x1 s.t. x1 + x2 <= k  ->  objective -k."""
    return LinearProgram(c=[-1.0, 0.0], A_ub=[[1.0, 1.0]], b_ub=[k])


def _infeasible_lp() -> LinearProgram:
    return LinearProgram(c=[1.0], A_ub=[[1.0], [-1.0]], b_ub=[1.0, -2.0])


def _unbounded_lp() -> LinearProgram:
    return LinearProgram(c=[-1.0], A_ub=[[-1.0]], b_ub=[0.0])


class TestStackBlockDiagonal:
    def test_offsets_and_shapes(self):
        lps = [_optimal_lp(), _infeasible_lp(), _unbounded_lp()]
        stacked, offsets = stack_block_diagonal(lps)
        assert list(offsets) == [0, 2, 3, 4]
        assert stacked.n_variables == 4
        assert stacked.n_inequalities == 4
        dense = stacked.A_ub.toarray()
        # Block structure: off-diagonal zero.
        np.testing.assert_allclose(dense[0, 2:], 0.0)
        np.testing.assert_allclose(dense[1:3, :2], 0.0)
        np.testing.assert_allclose(dense[3, :3], 0.0)

    def test_equality_blocks_stack(self):
        lps = [
            LinearProgram(c=[1.0], A_eq=[[1.0]], b_eq=[2.0], bounds=[(0, None)]),
            LinearProgram(c=[1.0, 1.0], A_eq=[[1.0, 1.0]], b_eq=[1.0]),
        ]
        stacked, offsets = stack_block_diagonal(lps)
        assert stacked.n_equalities == 2
        assert stacked.A_ub is None
        results = solve_lp_batch(lps, strategy="stacked")
        assert [r.status for r in results] == [LPStatus.OPTIMAL] * 2
        np.testing.assert_allclose(results[0].x, [2.0])

    def test_constraint_free_block(self):
        lps = [_optimal_lp(), LinearProgram(c=[1.0])]
        results = solve_lp_batch(lps, strategy="stacked")
        assert all(r.is_optimal for r in results)
        np.testing.assert_allclose(results[1].x, [0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stack_block_diagonal([])


class TestSolveLPBatchStacked:
    def test_empty_batch(self):
        with count_highs_calls() as counter:
            assert solve_lp_batch([], strategy="stacked") == []
        assert counter.calls == 0

    def test_batch_of_one_bit_identical_to_solo(self):
        lp = _optimal_lp(3.0)
        (batched,) = solve_lp_batch([lp], strategy="stacked")
        solo = solve_lp(lp)
        assert batched.status is solo.status
        np.testing.assert_array_equal(batched.x, solo.x)

    def test_one_call_for_all_feasible_batch(self):
        lps = [_optimal_lp(float(k)) for k in range(1, 30)]
        with count_highs_calls() as counter:
            results = solve_lp_batch(lps, strategy="stacked")
        assert counter.calls == 1
        for k, result in enumerate(results, start=1):
            assert result.is_optimal
            assert result.objective == pytest.approx(-float(k))

    def test_mixed_statuses_stay_exact(self):
        lps = [
            _optimal_lp(),
            _infeasible_lp(),
            _unbounded_lp(),
            _optimal_lp(2.0),
        ]
        stats = BatchSolveStats()
        results = solve_lp_batch(lps, strategy="stacked", stats=stats)
        assert [r.status for r in results] == [
            LPStatus.OPTIMAL,
            LPStatus.INFEASIBLE,
            LPStatus.UNBOUNDED,
            LPStatus.OPTIMAL,
        ]
        # A poisoned stack is re-solved per LP for exact statuses.
        assert stats.fallback_solves == len(lps)
        assert results[3].objective == pytest.approx(-2.0)

    def test_chunking_counts_and_matches(self):
        lps = [_optimal_lp(float(k)) for k in range(1, 11)]
        stats = BatchSolveStats()
        with count_highs_calls() as counter:
            chunked = solve_lp_batch(
                lps, strategy="stacked", chunk_size=3, stats=stats
            )
        assert counter.calls == 4  # ceil(10 / 3)
        assert stats.stacked_calls == 4
        one_shot = solve_lp_batch(lps, strategy="stacked")
        for a, b in zip(chunked, one_shot):
            assert a.status is b.status
            assert a.objective == pytest.approx(b.objective, abs=1e-9)

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            solve_lp_batch([_optimal_lp()] * 2, strategy="stacked", chunk_size=0)


class TestStrategies:
    def test_per_lp_equals_solo_loop(self):
        lps = [_optimal_lp(2.0), _infeasible_lp()]
        with count_highs_calls() as counter:
            batched = solve_lp_batch(lps, strategy="per-lp")
        assert counter.calls == 2
        for lp, result in zip(lps, batched):
            solo = solve_lp(lp)
            assert result.status is solo.status
            if solo.x is not None:
                np.testing.assert_array_equal(result.x, solo.x)

    def test_auto_resolves_per_backend(self):
        lps = [_optimal_lp(2.0)]
        with count_highs_calls() as counter:
            scipy_result = solve_lp_batch(lps, backend="scipy", strategy="auto")
        assert counter.calls == 1
        simplex_result = solve_lp_batch(lps, backend="simplex", strategy="auto")
        assert scipy_result[0].objective == pytest.approx(
            simplex_result[0].objective
        )

    def test_strategy_backend_mismatch(self):
        with pytest.raises(SolverError):
            solve_lp_batch([_optimal_lp()], backend="simplex", strategy="stacked")
        with pytest.raises(SolverError):
            solve_lp_batch([_optimal_lp()], backend="scipy", strategy="grouped")

    def test_unknown_strategy(self):
        with pytest.raises(SolverError):
            solve_lp_batch([_optimal_lp()], strategy="quantum")

    def test_unknown_backend_on_per_lp(self):
        with pytest.raises(SolverError):
            solve_lp_batch([_optimal_lp()], backend="nope", strategy="per-lp")


class TestGroupedSimplex:
    def _structured_batch(self, count: int = 8, seed: int = 3):
        rng = np.random.default_rng(seed)
        pattern = rng.random((4, 6)) < 0.5
        pattern[0, :] = True  # bounded: one row covers every column
        lps = []
        for _ in range(count):
            A = np.where(pattern, rng.uniform(0.5, 2.0, pattern.shape), 0.0)
            lps.append(
                LinearProgram(
                    c=-rng.uniform(0.5, 1.5, 6), A_ub=A, b_ub=np.ones(4)
                )
            )
        return lps

    def test_grouped_matches_per_lp_simplex(self):
        lps = self._structured_batch()
        stats = BatchSolveStats()
        grouped = solve_lp_batch(
            lps, backend="simplex", strategy="grouped", stats=stats
        )
        assert stats.groups == 1  # one shared sparsity pattern
        assert stats.warm_started + stats.warm_rejected == len(lps) - 1
        for lp, result in zip(lps, grouped):
            reference = solve_lp(lp, backend="simplex")
            assert result.status is reference.status
            assert result.objective == pytest.approx(
                reference.objective, abs=1e-9
            )
            assert lp.is_feasible(result.x, tol=1e-7)

    def test_warm_started_siblings_match_cold_solves(self):
        lps = self._structured_batch(count=12, seed=9)
        stats = BatchSolveStats()
        warm = solve_lp_batch(
            lps, backend="simplex", strategy="grouped", stats=stats
        )
        assert stats.warm_started > 0
        cold = [
            solve_lp_batch([lp], backend="simplex", strategy="grouped")[0]
            for lp in lps
        ]
        for a, b in zip(warm, cold):
            assert a.status is b.status
            assert a.objective == pytest.approx(b.objective, abs=1e-12)
            np.testing.assert_allclose(a.x, b.x, atol=1e-12)

    def test_unsupported_shapes_fall_back(self):
        lps = [
            LinearProgram(  # equality constraint: not kernel-shaped
                c=[1.0], A_eq=[[1.0]], b_eq=[2.0], bounds=[(0, None)]
            ),
            LinearProgram(  # upper-bounded variable: not kernel-shaped
                c=[-1.0], A_ub=[[1.0]], b_ub=[5.0], bounds=[(0.0, 2.0)]
            ),
            LinearProgram(  # negative rhs: needs phase 1
                c=[1.0], A_ub=[[-1.0]], b_ub=[-1.0]
            ),
        ]
        results = solve_lp_batch(lps, backend="simplex", strategy="grouped")
        np.testing.assert_allclose(results[0].x, [2.0])
        assert results[1].objective == pytest.approx(-2.0)
        assert results[2].objective == pytest.approx(1.0)


class TestSparseLinearProgram:
    def test_sparse_input_normalised_to_csr(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            A_ub=sp.coo_matrix(np.array([[1.0, 2.0]])),
            b_ub=[1.0],
        )
        assert lp.is_sparse
        assert sp.issparse(lp.A_ub) and lp.A_ub.format == "csr"
        dense = lp.densified()
        assert not dense.is_sparse
        np.testing.assert_allclose(dense.A_ub, [[1.0, 2.0]])
        # Densify of a dense LP is a no-op.
        assert dense.densified() is dense

    def test_sparse_validation(self):
        with pytest.raises(ValueError):
            LinearProgram(
                c=[1.0], A_ub=sp.csr_matrix((1, 2), dtype=np.float64), b_ub=[1.0]
            )
        with pytest.raises(ValueError):
            LinearProgram(
                c=[1.0, 1.0],
                A_ub=sp.csr_matrix((1, 2), dtype=np.float64),
                b_ub=[1.0, 2.0],
            )

    def test_feasibility_check_works_sparse(self):
        lp = maxmin_to_lp_fixture()
        assert lp.is_feasible(np.zeros(lp.n_variables))

    def test_sparse_and_dense_backends_agree(self):
        lp_sparse = maxmin_to_lp_fixture()
        lp_dense = lp_sparse.densified()
        a = solve_lp(lp_sparse, backend="scipy")
        b = solve_lp(lp_dense, backend="scipy")
        np.testing.assert_array_equal(a.x, b.x)
        c = solve_lp(lp_sparse, backend="simplex")
        assert c.objective == pytest.approx(a.objective, abs=1e-8)


def maxmin_to_lp_fixture() -> LinearProgram:
    from repro import cycle_instance

    return maxmin_to_lp(cycle_instance(8))


class TestCompiledMaxMin:
    def test_lp_matches_maxmin_to_lp(self):
        from repro import grid_instance

        problem = grid_instance((3, 3))
        compiled = CompiledMaxMin.from_problem(problem)
        a = compiled.lp()
        b = maxmin_to_lp(problem)
        np.testing.assert_array_equal(a.A_ub.toarray(), b.A_ub.toarray())
        np.testing.assert_array_equal(a.b_ub, b.b_ub)
        np.testing.assert_array_equal(a.c, b.c)

    def test_from_triples_matches_canonical_problem(self):
        from repro import grid_instance
        from repro.canon.labeling import CanonicalIndex
        from repro.hypergraph.communication import communication_hypergraph

        problem = grid_instance((3, 4))
        H = communication_hypergraph(problem)
        index = CanonicalIndex()
        for u in list(problem.agents)[:4]:
            sub = problem.local_subproblem(H.ball(u, 1))
            form = index.canonical_form_of_problem(sub)
            compiled = form.compiled()
            reference = maxmin_to_lp(form.problem())
            np.testing.assert_array_equal(
                compiled.lp().A_ub.toarray(), reference.A_ub.toarray()
            )

    def test_buffer_round_trip(self):
        from repro import cycle_instance

        compiled = CompiledMaxMin.from_problem(cycle_instance(6))
        again = CompiledMaxMin.from_buffers(compiled.to_buffers())
        assert again.n_agents == compiled.n_agents
        np.testing.assert_array_equal(again.A.toarray(), compiled.A.toarray())
        np.testing.assert_array_equal(again.C.toarray(), compiled.C.toarray())

    def test_objective(self):
        from repro import cycle_instance

        problem = cycle_instance(6)
        compiled = CompiledMaxMin.from_problem(problem)
        x = np.full(problem.n_agents, 0.25)
        assert compiled.objective(x) == pytest.approx(problem.objective(x))
        empty = CompiledMaxMin.from_triples(2, 1, 0, [(0, 0, 1.0)], [])
        assert math.isinf(empty.objective(np.zeros(2)))


class TestMaxMinBatch:
    def test_per_lp_batch_equals_per_instance(self):
        from repro import cycle_instance, grid_instance, path_instance

        problems = [cycle_instance(8), grid_instance((3, 3)), path_instance(5)]
        batch = solve_max_min_batch(problems)
        for problem, result in zip(problems, batch):
            solo = solve_max_min(problem)
            assert result.objective == solo.objective
            assert result.x == solo.x

    def test_stacked_batch_same_optima(self):
        from repro import cycle_instance, grid_instance

        problems = [cycle_instance(8), grid_instance((3, 3))]
        with count_highs_calls() as counter:
            stacked = solve_max_min_batch(problems, strategy="stacked")
        assert counter.calls == 1
        for problem, result in zip(problems, stacked):
            solo = solve_max_min(problem)
            assert result.objective == pytest.approx(solo.objective, abs=1e-9)
            assert problem.is_feasible(problem.to_array(result.x))

    def test_buffer_batch_stacked_fallback_statuses(self):
        # An infeasible block cannot arise from a well-formed reduction, so
        # exercise the fallback with a synthetic unbounded block: a unit
        # with no resources (ω grows without bound).
        from repro import cycle_instance

        good = CompiledMaxMin.from_problem(cycle_instance(6))
        bad = CompiledMaxMin.from_triples(1, 0, 1, [], [(0, 0, 1.0)])
        out = solve_maxmin_buffer_batch(
            [good.to_buffers(), bad.to_buffers()],
            backend="scipy",
            strategy="stacked",
        )
        assert out[0][0] == LPStatus.OPTIMAL.value
        assert out[1][0] == LPStatus.UNBOUNDED.value


class TestBatchedBisection:
    def test_multi_probe_matches_classic(self):
        from repro import cycle_instance

        problem = cycle_instance(10)
        classic = solve_max_min_bisection(problem, tol=1e-7)
        for k in (2, 5, 16):
            batched = solve_max_min_bisection(
                problem, tol=1e-7, probes_per_round=k, strategy="stacked"
            )
            assert batched.objective == pytest.approx(
                classic.objective, abs=1e-5
            )
            assert problem.is_feasible(problem.to_array(batched.x))

    def test_probe_rounds_cost_one_call_each(self):
        from repro import cycle_instance

        problem = cycle_instance(8)
        with count_highs_calls() as classic_counter:
            solve_max_min_bisection(problem, tol=1e-6)
        with count_highs_calls() as batched_counter:
            solve_max_min_bisection(
                problem, tol=1e-6, probes_per_round=8, strategy="stacked"
            )
        assert batched_counter.calls < classic_counter.calls

    def test_probes_per_round_validation(self):
        from repro import cycle_instance

        with pytest.raises(ValueError):
            solve_max_min_bisection(cycle_instance(6), probes_per_round=0)


class TestHiGHSCallCounter:
    def test_counters_nest(self):
        lp = _optimal_lp()
        with count_highs_calls() as outer:
            solve_lp(lp)
            with count_highs_calls() as inner:
                solve_lp(lp)
        assert inner.calls == 1
        assert outer.calls == 2
