"""Unit tests for the max-min LP reduction and bisection solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MaxMinLPBuilder, UnboundedError
from repro.lp import maxmin_to_lp, solve_max_min, solve_max_min_bisection


class TestReduction:
    def test_shapes(self, cycle8):
        lp = maxmin_to_lp(cycle8)
        n = cycle8.n_agents
        assert lp.n_variables == n + 1
        assert lp.n_inequalities == cycle8.n_resources + cycle8.n_beneficiaries
        # maximising ω is minimising -ω.
        assert lp.c[-1] == -1.0
        assert np.all(lp.c[:-1] == 0.0)

    def test_reduction_rows(self, tiny_instance):
        lp = maxmin_to_lp(tiny_instance)
        # First block: A x <= 1 (ω coefficient 0); second: ω - C x <= 0.
        # The reduction is assembled sparse end-to-end.
        assert lp.is_sparse
        assert lp.A_ub.shape == (2, 3)
        dense = lp.A_ub.toarray()
        np.testing.assert_allclose(dense[0], [1.0, 1.0, 0.0])
        np.testing.assert_allclose(dense[1], [-1.0, -1.0, 1.0])
        np.testing.assert_allclose(lp.b_ub, [1.0, 0.0])

    def test_reduction_optimum_matches_objective(self, asymmetric_instance):
        result = solve_max_min(asymmetric_instance)
        achieved = asymmetric_instance.objective(
            asymmetric_instance.to_array(result.x)
        )
        assert achieved == pytest.approx(result.objective, abs=1e-8)


class TestSolveMaxMin:
    def test_no_beneficiaries_raises(self):
        from repro import MaxMinLP

        problem = MaxMinLP(["v"], {("i", "v"): 1.0}, {}, validate=False)
        with pytest.raises(UnboundedError):
            solve_max_min(problem)

    def test_empty_instance(self):
        from repro import MaxMinLP

        problem = MaxMinLP([], {}, {("k", "v"): 1.0} if False else {}, validate=False)
        # No agents and no beneficiaries: unbounded by convention.
        with pytest.raises(UnboundedError):
            solve_max_min(problem)

    def test_scaling_invariance(self):
        # Scaling all benefit coefficients by λ scales the optimum by λ.
        base = MaxMinLPBuilder()
        base.set_consumption("i", "a", 1.0)
        base.set_consumption("i", "b", 1.0)
        base.set_benefit("k1", "a", 1.0)
        base.set_benefit("k2", "b", 1.0)
        problem1 = base.build()

        scaled = MaxMinLPBuilder()
        scaled.set_consumption("i", "a", 1.0)
        scaled.set_consumption("i", "b", 1.0)
        scaled.set_benefit("k1", "a", 3.0)
        scaled.set_benefit("k2", "b", 3.0)
        problem2 = scaled.build()

        assert solve_max_min(problem2).objective == pytest.approx(
            3.0 * solve_max_min(problem1).objective
        )

    def test_resource_scaling(self):
        # Doubling all consumption halves the optimum.
        one = MaxMinLPBuilder()
        one.set_consumption("i", "a", 1.0)
        one.set_benefit("k", "a", 1.0)
        two = MaxMinLPBuilder()
        two.set_consumption("i", "a", 2.0)
        two.set_benefit("k", "a", 1.0)
        assert solve_max_min(two.build()).objective == pytest.approx(
            0.5 * solve_max_min(one.build()).objective
        )


class TestBisection:
    def test_matches_exact_on_fixtures(self, tiny_instance, asymmetric_instance, path6):
        for problem in (tiny_instance, asymmetric_instance, path6):
            exact = solve_max_min(problem).objective
            approx = solve_max_min_bisection(problem, tol=1e-7).objective
            assert approx == pytest.approx(exact, abs=1e-4)

    def test_solution_is_feasible(self, grid4x4):
        result = solve_max_min_bisection(grid4x4, tol=1e-5)
        assert grid4x4.is_feasible(grid4x4.to_array(result.x), tol=1e-6)

    def test_zero_upper_bound_instance(self):
        # A beneficiary served only by an agent that is completely blocked
        # still has optimum 0 and must not loop forever.
        builder = MaxMinLPBuilder()
        builder.set_consumption("i", "a", 1.0)
        builder.set_benefit("k", "a", 0.0)
        builder.set_benefit("k2", "a", 1.0)
        problem = builder.build(validate=False)
        # "k" has empty support after dropping the zero coefficient -> the
        # instance is degenerate; drop it and use a plain one instead.
        builder2 = MaxMinLPBuilder()
        builder2.set_consumption("i", "a", 1.0)
        builder2.set_benefit("k", "a", 1.0)
        problem = builder2.build()
        result = solve_max_min_bisection(problem)
        assert result.objective == pytest.approx(1.0, abs=1e-4)
