"""Unit tests for the multiplicative-weights approximate max-min solver."""

from __future__ import annotations

import pytest

from repro import UnboundedError, optimal_objective
from repro.lp import mwu_feasibility, solve_max_min_mwu


class TestFeasibilityOracle:
    def test_trivial_target_returns_zero_vector(self, tiny_instance):
        x, iterations = mwu_feasibility(tiny_instance, 0.0)
        assert iterations == 0
        assert list(x) == [0.0, 0.0]

    def test_reachable_target(self, tiny_instance):
        # Optimum is 1.0; a target comfortably below it must be reached.
        x, _ = mwu_feasibility(tiny_instance, 0.5, epsilon=0.1)
        assert x is not None
        assert tiny_instance.is_feasible(x, tol=1e-9)
        assert tiny_instance.objective(x) >= 0.5 * (1 - 0.1) - 1e-9

    def test_unreachable_target_reports_failure_or_scales_down(self, tiny_instance):
        x, _ = mwu_feasibility(tiny_instance, 100.0, epsilon=0.1, max_iterations=5000)
        if x is not None:
            # Whatever is returned must at least be feasible.
            assert tiny_instance.is_feasible(x, tol=1e-9)
            assert tiny_instance.objective(x) < 100.0


class TestSolver:
    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "asymmetric_instance", "cycle8", "random_instance"]
    )
    def test_solution_is_feasible(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        result = solve_max_min_mwu(problem, epsilon=0.1)
        assert problem.is_feasible(problem.to_array(result.x), tol=1e-7)

    @pytest.mark.parametrize("fixture", ["tiny_instance", "asymmetric_instance", "cycle8"])
    def test_solution_is_near_optimal(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        optimum = optimal_objective(problem)
        result = solve_max_min_mwu(problem, epsilon=0.1)
        # Conservative check: within a factor 1.5 of the optimum (the method
        # is (1-ε)²-accurate in theory; the slack avoids flakiness).
        assert result.objective >= optimum / 1.5 - 1e-9

    def test_never_worse_than_safe(self, grid4x4):
        from repro import safe_solution

        safe_obj = grid4x4.objective(grid4x4.to_array(safe_solution(grid4x4)))
        result = solve_max_min_mwu(grid4x4, epsilon=0.2)
        assert result.objective >= safe_obj - 1e-9

    def test_iteration_accounting(self, tiny_instance):
        result = solve_max_min_mwu(tiny_instance, epsilon=0.1)
        assert result.iterations >= 0
        assert result.targets_tried >= 1

    def test_no_beneficiaries_raises(self):
        from repro import MaxMinLP

        problem = MaxMinLP(["v"], {("i", "v"): 1.0}, {}, validate=False)
        with pytest.raises(UnboundedError):
            solve_max_min_mwu(problem)
