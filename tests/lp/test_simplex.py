"""Unit tests for the from-scratch two-phase simplex backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import LinearProgram, LPStatus, solve_lp, solve_simplex


def assert_matches_scipy(lp: LinearProgram, *, abs_tol: float = 1e-7):
    """The simplex optimum must equal the HiGHS optimum (objective value)."""
    ours = solve_simplex(lp)
    reference = solve_lp(lp, backend="scipy")
    assert ours.status == reference.status
    if reference.is_optimal:
        assert ours.objective == pytest.approx(reference.objective, abs=abs_tol)
        assert lp.is_feasible(ours.x, tol=1e-6)


class TestAgainstScipy:
    def test_simple_packing(self):
        lp = LinearProgram(
            c=[-1.0, -2.0],
            A_ub=[[1.0, 1.0], [1.0, 3.0]],
            b_ub=[4.0, 6.0],
        )
        assert_matches_scipy(lp)

    def test_equality_constraints(self):
        lp = LinearProgram(
            c=[1.0, 2.0, 3.0],
            A_eq=[[1.0, 1.0, 1.0]],
            b_eq=[1.0],
        )
        assert_matches_scipy(lp)

    def test_mixed_constraints(self):
        lp = LinearProgram(
            c=[2.0, -1.0, 0.5],
            A_ub=[[1.0, 1.0, 0.0], [0.0, 1.0, 2.0]],
            b_ub=[3.0, 4.0],
            A_eq=[[1.0, 0.0, 1.0]],
            b_eq=[2.0],
        )
        assert_matches_scipy(lp)

    def test_upper_bounded_variables(self):
        lp = LinearProgram(
            c=[-1.0, -1.0],
            A_ub=[[2.0, 1.0]],
            b_ub=[3.0],
            bounds=[(0.0, 1.0), (0.0, 1.0)],
        )
        assert_matches_scipy(lp)

    def test_free_variable(self):
        lp = LinearProgram(
            c=[1.0, 0.0],
            A_eq=[[1.0, 1.0]],
            b_eq=[0.5],
            bounds=[(None, None), (0.0, None)],
        )
        assert_matches_scipy(lp)

    def test_negative_rhs(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            A_ub=[[-1.0, -1.0]],
            b_ub=[-1.0],  # x1 + x2 >= 1
        )
        assert_matches_scipy(lp)

    def test_degenerate_lp(self):
        lp = LinearProgram(
            c=[-1.0, -1.0],
            A_ub=[[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]],
            b_ub=[1.0, 1.0, 1.0],
        )
        assert_matches_scipy(lp)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_packing_lps(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 6, 4
        lp = LinearProgram(
            c=-rng.uniform(0.1, 1.0, size=n),
            A_ub=rng.uniform(0.0, 1.0, size=(m, n)),
            b_ub=rng.uniform(1.0, 2.0, size=m),
        )
        assert_matches_scipy(lp, abs_tol=1e-6)


class TestStatuses:
    def test_infeasible(self):
        lp = LinearProgram(
            c=[1.0],
            A_ub=[[1.0], [-1.0]],
            b_ub=[1.0, -2.0],  # x <= 1 and x >= 2
        )
        assert solve_simplex(lp).status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        lp = LinearProgram(c=[-1.0], A_ub=[[-1.0]], b_ub=[0.0])
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_no_constraints_bounded(self):
        lp = LinearProgram(c=[1.0, 1.0])
        result = solve_simplex(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(0.0)

    def test_no_constraints_unbounded(self):
        lp = LinearProgram(c=[-1.0])
        assert solve_simplex(lp).status is LPStatus.UNBOUNDED

    def test_redundant_equalities(self):
        lp = LinearProgram(
            c=[1.0, 1.0],
            A_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[1.0, 2.0],
        )
        result = solve_simplex(lp)
        assert result.is_optimal
        assert result.objective == pytest.approx(1.0)
