"""Unit tests for the LinearProgram description."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import LinearProgram, LPResult, LPStatus


class TestConstruction:
    def test_defaults(self):
        lp = LinearProgram(c=[1.0, 2.0])
        assert lp.n_variables == 2
        assert lp.n_inequalities == 0
        assert lp.n_equalities == 0
        assert lp.bounds == [(0.0, None), (0.0, None)]

    def test_dimension_checks(self):
        with pytest.raises(ValueError):
            LinearProgram(c=[[1.0, 2.0]])
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0, 2.0], A_ub=[[1.0]], b_ub=[1.0])
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], A_ub=[[1.0]], b_ub=[1.0, 2.0])
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0], A_eq=[[1.0, 2.0]], b_eq=[1.0])
        with pytest.raises(ValueError):
            LinearProgram(c=[1.0, 2.0], bounds=[(0, None)])

    def test_objective_value(self):
        lp = LinearProgram(c=[1.0, -2.0])
        assert lp.objective_value([3.0, 1.0]) == pytest.approx(1.0)


class TestFeasibility:
    def test_inequality_and_bounds(self):
        lp = LinearProgram(
            c=[1.0, 1.0], A_ub=[[1.0, 1.0]], b_ub=[1.0], bounds=[(0, None), (0, 2)]
        )
        assert lp.is_feasible([0.5, 0.5])
        assert not lp.is_feasible([0.8, 0.8])
        assert not lp.is_feasible([-0.1, 0.0])
        assert not lp.is_feasible([0.0, 2.5])
        assert not lp.is_feasible([0.5])  # wrong shape

    def test_equality(self):
        lp = LinearProgram(c=[1.0, 1.0], A_eq=[[1.0, 1.0]], b_eq=[1.0])
        assert lp.is_feasible([0.25, 0.75])
        assert not lp.is_feasible([0.25, 0.25])

    def test_free_variables(self):
        lp = LinearProgram(c=[1.0], bounds=[(None, None)])
        assert lp.is_feasible([-10.0])


class TestLPResult:
    def test_is_optimal_flag(self):
        ok = LPResult(LPStatus.OPTIMAL, np.array([1.0]), 1.0)
        bad = LPResult(LPStatus.INFEASIBLE, None, None)
        assert ok.is_optimal
        assert not bad.is_optimal
