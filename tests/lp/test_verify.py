"""Unit tests for solver-free solution certificates (repro.lp.verify)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import MaxMinLP
from repro.core import optimal_solution, safe_solution
from repro.engine import BatchSolver, ResultCache
from repro.exceptions import VerificationError
from repro.generators import cycle_instance, grid_instance
from repro.io import solution_to_dict
from repro.lp import (
    DEFAULT_TOL,
    SolutionCertificate,
    verify_engine_payload,
    verify_lp_solution,
    verify_safe_ratio,
    verify_solution,
)
from repro.lp.maxmin import CompiledMaxMin


@pytest.fixture(scope="module")
def cycle():
    return cycle_instance(8)


@pytest.fixture(scope="module")
def solved(cycle):
    engine = BatchSolver(cache=ResultCache())
    (result,) = engine.solve_maxmin_batch([cycle])
    return result


class TestVerifySolution:
    def test_accepts_solver_output(self, cycle, solved):
        cert = verify_solution(cycle, solved)
        assert isinstance(cert, SolutionCertificate)
        assert cert.kind == "maxmin"
        assert cert.max_violation <= DEFAULT_TOL
        assert cert.objective_error <= DEFAULT_TOL

    def test_accepts_payload_wire_form(self, cycle, solved):
        payload = {
            "objective": solved.objective,
            "x": solution_to_dict(solved.x),
            "backend": solved.backend,
        }
        verify_solution(cycle, payload)

    def test_accepts_tuple_and_attr_forms(self, cycle, solved):
        verify_solution(cycle, (solved.x, solved.objective))

        class Duck:
            x = solved.x
            objective = solved.objective

        verify_solution(cycle, Duck())

    def test_rejects_perturbed_objective(self, cycle, solved):
        with pytest.raises(VerificationError, match="objective mismatch"):
            verify_solution(cycle, (solved.x, solved.objective + 0.5))

    def test_rejects_perturbed_coordinate(self, cycle, solved):
        x = dict(solved.x)
        victim = next(iter(x))
        x[victim] = x[victim] + 1.0  # breaks Ax <= 1 and/or the objective
        with pytest.raises(VerificationError):
            verify_solution(cycle, (x, solved.objective))

    def test_rejects_negative_activity(self, cycle, solved):
        x = dict(solved.x)
        victim = next(iter(x))
        x[victim] = -0.25
        with pytest.raises(VerificationError, match="negative activity"):
            verify_solution(cycle, (x, solved.objective))

    def test_rejects_nonfinite(self, cycle, solved):
        x = dict(solved.x)
        victim = next(iter(x))
        x[victim] = float("nan")
        with pytest.raises(VerificationError, match="non-finite"):
            verify_solution(cycle, (x, solved.objective))

    def test_rejects_missing_agent(self, cycle, solved):
        x = dict(solved.x)
        x.pop(next(iter(x)))
        with pytest.raises(VerificationError, match="names"):
            verify_solution(cycle, (x, solved.objective))

    def test_rejects_wrong_shape_vector(self, cycle, solved):
        with pytest.raises(VerificationError, match="shape"):
            verify_solution(cycle, (np.zeros(3), 0.0))

    def test_tolerance_absorbs_solver_noise(self, cycle, solved):
        verify_solution(cycle, (solved.x, solved.objective + 1e-9))

    def test_compiled_instance_positional(self, cycle, solved):
        compiled = CompiledMaxMin.from_problem(cycle)
        x = np.asarray([solved.x[v] for v in cycle.agents])
        verify_solution(compiled, (x, solved.objective))

    def test_unsupported_result_form(self, cycle):
        with pytest.raises(VerificationError, match="unsupported result"):
            verify_solution(cycle, object())

    def test_optimal_solution_roundtrip(self):
        problem = grid_instance((4, 4), torus=True)
        result = optimal_solution(problem)
        verify_solution(problem, (result.x, result.objective))


class TestVerifySafeRatio:
    def test_safe_bound_holds(self, cycle, solved):
        safe_objective = cycle.objective(safe_solution(cycle))
        ratio = verify_safe_ratio(cycle, solved.objective, safe_objective)
        assert ratio >= 1.0 - DEFAULT_TOL

    def test_rejects_inflated_optimum(self, cycle, solved):
        safe_objective = cycle.objective(safe_solution(cycle))
        with pytest.raises(VerificationError, match="bound violated"):
            verify_safe_ratio(
                cycle, solved.objective * 100.0, safe_objective
            )

    def test_rejects_negative_inputs(self, cycle):
        with pytest.raises(VerificationError, match="negative"):
            verify_safe_ratio(cycle, -1.0, 1.0)


class TestVerifyEnginePayload:
    def test_accepts_maxmin_payload(self, cycle, solved):
        compiled = CompiledMaxMin.from_problem(cycle)
        payload = {
            "objective": solved.objective,
            "x": solution_to_dict(solved.x),
            "backend": solved.backend,
        }
        cert = verify_engine_payload(
            compiled, cycle.agents, payload, kind="maxmin_exact"
        )
        assert cert.kind == "maxmin"

    def test_rejects_non_mapping(self, cycle):
        compiled = CompiledMaxMin.from_problem(cycle)
        with pytest.raises(VerificationError, match="not a mapping"):
            verify_engine_payload(
                compiled, cycle.agents, None, kind="maxmin_exact"
            )

    def test_rejects_payload_without_fields(self, cycle):
        compiled = CompiledMaxMin.from_problem(cycle)
        with pytest.raises(VerificationError, match="required"):
            verify_engine_payload(
                compiled, cycle.agents, {"nope": 1}, kind="maxmin_exact"
            )


class TestVerifyLPSolution:
    def test_round_trip_via_backend(self, cycle):
        from repro.lp.backends import solve_lp

        lp = CompiledMaxMin.from_problem(cycle).lp()
        result = solve_lp(lp)
        cert = verify_lp_solution(lp, result)
        assert cert.kind == "lp"

    def test_rejects_corrupted_objective(self, cycle):
        from dataclasses import replace

        from repro.lp.backends import solve_lp

        lp = CompiledMaxMin.from_problem(cycle).lp()
        result = solve_lp(lp)
        bad = replace(result, objective=result.objective + 1.0)
        with pytest.raises(VerificationError, match="mismatch"):
            verify_lp_solution(lp, bad)
