"""The metrics registry: instruments, quantiles, Prometheus rendering."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    render_prometheus,
)


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter("lp.highs.calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("engine.inflight")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2

    def test_counter_is_thread_safe(self):
        counter = Counter("x")

        def work() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_quantiles_interpolate_without_samples(self):
        hist = Histogram("t", buckets=[1.0, 2.0, 4.0])
        for value in [0.5] * 50 + [3.0] * 50:
            hist.observe(value)
        assert hist.count == 100
        assert hist.sum == pytest.approx(175.0)
        # p25 falls in the first bucket (0..1), p75 in the third (2..4).
        assert 0.0 < hist.quantile(0.25) <= 1.0
        assert 2.0 < hist.quantile(0.75) <= 4.0
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 1.0

    def test_overflow_goes_to_inf_bucket(self):
        hist = Histogram("t", buckets=[1.0])
        hist.observe(100.0)
        pairs = hist.cumulative_buckets()
        assert pairs[-1] == (math.inf, 1)
        assert pairs[0] == (1.0, 0)

    def test_empty_histogram_quantile_is_zero(self):
        hist = Histogram("t", buckets=[1.0])
        assert hist.quantile(0.99) == 0.0
        assert hist.snapshot() == {"count": 0.0, "sum": 0.0}

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=[1.0]).quantile(1.5)

    def test_default_buckets_span_nanoseconds_to_minutes(self):
        hist = Histogram("t")
        assert hist.buckets[0] < 1e-6
        assert hist.buckets[-1] > 60.0


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_is_json_friendly(self):
        registry = MetricsRegistry()
        registry.counter("b.calls").inc(2)
        registry.gauge("a.depth").set(1.5)
        registry.histogram("c.seconds").observe(0.01)
        snap = registry.snapshot()
        assert list(snap) == ["a.depth", "b.calls", "c.seconds"]
        assert snap["b.calls"] == 2
        assert snap["a.depth"] == 1.5
        assert snap["c.seconds"]["count"] == 1.0

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestPrometheusRendering:
    def test_counter_gauge_histogram_series(self):
        registry = MetricsRegistry()
        registry.counter("lp.highs.calls", help="HiGHS invocations").inc(3)
        registry.gauge("engine.depth").set(2)
        hist = registry.histogram("lp.highs.seconds", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_prometheus(registry)
        assert "# HELP repro_lp_highs_calls HiGHS invocations" in text
        assert "# TYPE repro_lp_highs_calls counter" in text
        assert "repro_lp_highs_calls 3" in text
        assert "# TYPE repro_engine_depth gauge" in text
        assert 'repro_lp_highs_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lp_highs_seconds_bucket{le="1"} 2' in text
        assert 'repro_lp_highs_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lp_highs_seconds_count 2" in text
        assert text.endswith("\n")

    def test_extra_nested_stats_flatten_to_gauges(self):
        text = render_prometheus(
            None,
            extra={
                "scheduler": {"requests": {"cache": 7}, "backend": "highs"},
                "uptime": 1.25,
            },
        )
        assert "repro_scheduler_requests_cache 7" in text
        assert "repro_uptime 1.25" in text
        # Non-numeric leaves have no gauge form.
        assert "backend" not in text
