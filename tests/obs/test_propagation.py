"""End-to-end span propagation through the engine's worker pools.

The acceptance tests of the tracing tentpole: spans recorded inside
thread- and process-pool chunk workers must reattach under the engine
batch that submitted them, and a disabled tracer must see nothing at all.
"""

from __future__ import annotations

import pytest

from repro.engine import ResultCache
from repro.obs.trace import Tracer, set_global_tracer, tracing
from repro.scenarios.runner import SuiteRunner
from repro.scenarios.spec import ScenarioSpec

SPEC = ScenarioSpec(family="cycle", params={"n": 8}, seed=1, radii=(1,))


def _run_traced(mode: str) -> Tracer:
    runner = SuiteRunner(mode=mode, max_workers=2, cache=ResultCache())
    with tracing() as tracer:
        report = runner.run_suite([SPEC])
    assert len(report.results) == 1
    return tracer


def _assert_engine_tree(tracer: Tracer) -> None:
    spans = tracer.spans()
    by_id = {s.span_id: s for s in spans}
    names = {s.name for s in spans}

    # No orphans: every parent id resolves inside the same trace.
    for record in spans:
        if record.parent_id is not None:
            assert record.parent_id in by_id, (
                f"{record.name} has dangling parent {record.parent_id}"
            )

    # The full pipeline is present down to the individual HiGHS calls.
    for stage in ("suite.run", "engine.batch", "lp.chunk", "lp.highs"):
        assert stage in names, f"missing {stage} (got {sorted(names)})"

    def ancestors(record):
        while record.parent_id is not None:
            record = by_id[record.parent_id]
            yield record.name

    for record in spans:
        if record.name == "lp.chunk":
            assert "engine.batch" in ancestors(record)
        if record.name == "lp.highs":
            assert "lp.chunk" in ancestors(record)

    # Reattached worker spans sit inside their parent batch's window.
    batches = {
        s.span_id: s for s in spans if s.name == "engine.batch"
    }
    for record in spans:
        if record.name == "lp.chunk":
            parent = by_id[record.parent_id]
            assert parent.span_id in batches
            assert parent.start <= record.start + 1e-6
            assert record.end <= parent.end + 1e-6


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
def test_worker_spans_reattach_under_engine_batch(mode):
    tracer = _run_traced(mode)
    _assert_engine_tree(tracer)


def test_disabled_tracer_records_nothing():
    bystander = Tracer()
    set_global_tracer(None)
    runner = SuiteRunner(cache=ResultCache())
    runner.run_suite([SPEC])
    assert len(bystander) == 0
    assert set_global_tracer(None) is None  # nothing was installed behind us


def test_job_records_carry_stage_timings():
    """The scheduler persists per-job stage totals into the run registry."""
    from repro.engine import RunRegistry
    from repro.serve.service import SolverService

    service = SolverService()
    try:
        with tracing():
            service.solve_scenario(SPEC)
        registry: RunRegistry = service.runner.engine.registry
        timed = [
            job for job in registry.jobs if "stage_timings" in job.meta
        ]
        assert timed, "no job captured stage timings"
        stages = timed[-1].meta["stage_timings"]
        assert isinstance(stages, dict) and stages
        assert all(v >= 0.0 for v in stages.values())
    finally:
        service.close()
