"""stats_as_dict/merge_stats: the one helper behind every stats dataclass."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.engine.cache import CacheStats
from repro.engine.executor import EngineStats
from repro.lp.batch import BatchSolveStats
from repro.obs.statsutil import merge_stats, stats_as_dict


class TestAsDict:
    def test_engine_stats_shape_is_declaration_order(self):
        stats = EngineStats(batches=1, units=2, executed=3)
        assert list(stats.as_dict()) == [
            "batches",
            "units",
            "executed",
            "dedup_saved",
            "coalesced",
            "pool_fallbacks",
            "pool_respawns",
            "unit_failures",
            "verify_passed",
            "verify_failed",
            "verify_requeued",
        ]
        assert stats.as_dict() == stats_as_dict(stats)

    def test_cache_stats_shape(self):
        assert list(CacheStats().as_dict()) == [
            "hits",
            "disk_hits",
            "misses",
            "puts",
            "evictions",
            "disk_evictions",
            "invalidations",
            "quarantined",
            "write_errors",
        ]

    def test_batch_solve_stats_shape(self):
        assert list(BatchSolveStats().as_dict()) == [
            "batches",
            "lps",
            "stacked_calls",
            "fallback_solves",
            "groups",
            "warm_started",
            "warm_rejected",
        ]

    def test_values_round_trip(self):
        stats = CacheStats(hits=4, misses=2)
        assert stats.as_dict()["hits"] == 4
        assert stats.as_dict()["misses"] == 2


class TestMerge:
    def test_merge_dataclass_source(self):
        into = EngineStats(batches=1, units=5)
        merge_stats(into, EngineStats(batches=2, units=7, executed=3))
        assert into.batches == 3
        assert into.units == 12
        assert into.executed == 3

    def test_merge_mapping_source_ignores_unknown_keys(self):
        into = BatchSolveStats(lps=10)
        result = merge_stats(into, {"lps": 5, "not_a_field": 99})
        assert result is into
        assert into.lps == 15
        assert not hasattr(into, "not_a_field")

    def test_merge_is_the_chunk_fanout_contract(self):
        """Workers ship ``as_dict()`` payloads; the parent merges them."""
        into = EngineStats()
        for _ in range(3):
            worker = EngineStats(batches=1, executed=2)
            merge_stats(into, worker.as_dict())
        assert into.batches == 3
        assert into.executed == 6

    def test_non_dataclass_target_raises(self):
        with pytest.raises(TypeError):
            stats_as_dict(object())


@dataclass
class _Sample:
    a: int = 0
    b: float = 0.0


def test_helper_works_for_any_dataclass():
    sample = _Sample(a=1, b=2.5)
    assert stats_as_dict(sample) == {"a": 1, "b": 2.5}
    merge_stats(sample, _Sample(a=2, b=0.5))
    assert sample == _Sample(a=3, b=3.0)
