"""Trace-file summaries: the ``repro obs summary`` machinery."""

from __future__ import annotations

import json

import pytest

from repro.obs.summary import format_table, load_trace_events, summarize_events
from repro.obs.trace import span, tracing


@pytest.fixture()
def trace_file(tmp_path):
    """A real chrome_trace dump with known nesting."""
    with tracing() as tracer:
        with span("suite.run"):
            with span("engine.batch"):
                with span("lp.highs"):
                    pass
                with span("lp.highs"):
                    pass
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(tracer.chrome_trace()))
    return path, tracer


class TestLoad:
    def test_loads_trace_events_dict_format(self, trace_file):
        path, tracer = trace_file
        events = load_trace_events(path)
        assert len(events) == len(tracer.spans())
        assert all(event["ph"] == "X" for event in events)

    def test_loads_bare_array_format(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(
            json.dumps(
                [{"ph": "X", "name": "a", "ts": 0, "dur": 10, "args": {}}]
            )
        )
        assert len(load_trace_events(path)) == 1

    def test_non_complete_events_are_filtered(self, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(
            json.dumps(
                {
                    "traceEvents": [
                        {"ph": "X", "name": "a", "ts": 0, "dur": 10},
                        {"ph": "M", "name": "process_name"},
                    ]
                }
            )
        )
        events = load_trace_events(path)
        assert [event["name"] for event in events] == ["a"]


class TestSummarize:
    def test_rows_match_in_memory_stage_summary(self, trace_file):
        path, tracer = trace_file
        rows = summarize_events(load_trace_events(path))
        stages = {row["stage"]: row for row in rows}
        assert set(stages) == {"suite.run", "engine.batch", "lp.highs"}
        assert stages["lp.highs"]["count"] == 2
        # Self times across stages sum to the root total (microsecond
        # rounding in the file is the only slack).
        self_sum = sum(row["self_s"] for row in rows)
        root_total = stages["suite.run"]["total_s"]
        assert self_sum == pytest.approx(root_total, abs=1e-4)

    def test_rows_sorted_by_total_descending(self, trace_file):
        path, _ = trace_file
        rows = summarize_events(load_trace_events(path))
        totals = [row["total_s"] for row in rows]
        assert totals == sorted(totals, reverse=True)


class TestFormat:
    def test_table_renders_all_stages(self, trace_file):
        path, _ = trace_file
        text = format_table(summarize_events(load_trace_events(path)))
        assert "stage" in text and "p99_ms" in text
        assert "suite.run" in text and "lp.highs" in text
        assert "sum of self times" in text

    def test_empty_rows_render_placeholder(self):
        assert format_table([]) == "(no spans)"
