"""The tracer: span nesting, context propagation, exports, disabled path."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    _NULL_SPAN,
    Tracer,
    activate,
    capture_context,
    get_tracer,
    set_global_tracer,
    span,
    stage_summary,
    tracing,
)


class TestDisabledPath:
    def test_span_returns_shared_null_handle(self):
        assert get_tracer() is None
        handle = span("anything", agents=3)
        assert handle is _NULL_SPAN
        with handle as inner:
            assert inner.tag(more=1) is _NULL_SPAN

    def test_disabled_spans_add_zero_entries(self):
        tracer = Tracer()
        for _ in range(10):
            with span("views.batch_balls", nodes=5):
                pass
        assert len(tracer) == 0

    def test_capture_context_is_none_when_disabled(self):
        assert capture_context() is None


class TestNesting:
    def test_parent_child_relationship(self):
        with tracing() as tracer:
            with span("outer", kind="suite"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        records = tracer.spans()
        assert [s.name for s in records] == ["outer", "inner", "inner"]
        outer, first, second = records
        assert outer.parent_id is None
        assert first.parent_id == outer.span_id
        assert second.parent_id == outer.span_id
        assert outer.tags == {"kind": "suite"}

    def test_durations_are_monotonic_and_contained(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        outer, inner = tracer.spans()
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.duration >= inner.duration >= 0.0

    def test_tag_attaches_mid_span(self):
        with tracing() as tracer:
            with span("request") as handle:
                handle.tag(source="cache")
        (record,) = tracer.spans()
        assert record.tags == {"source": "cache"}

    def test_tracing_restores_previous_tracer(self):
        outer = Tracer()
        set_global_tracer(outer)
        try:
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is outer
        finally:
            set_global_tracer(None)
        assert get_tracer() is None


class TestThreadPropagation:
    def test_worker_thread_attaches_under_submitting_span(self):
        with tracing() as tracer:
            with span("engine.batch"):
                ctx = capture_context()

                def work() -> None:
                    with tracer.attach(ctx["parent"]):
                        with span("lp.chunk"):
                            pass

                worker = threading.Thread(target=work)
                worker.start()
                worker.join()
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["lp.chunk"].parent_id == by_name["engine.batch"].span_id

    def test_threads_grow_disjoint_stacks(self):
        """Concurrent threads of one tracer never steal each other's parents."""
        with tracing() as tracer:
            barrier = threading.Barrier(2)

            def work(name: str) -> None:
                with span(f"root.{name}"):
                    barrier.wait()
                    with span(f"child.{name}"):
                        pass

            threads = [
                threading.Thread(target=work, args=(name,))
                for name in ("a", "b")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        by_name = {s.name: s for s in tracer.spans()}
        for name in ("a", "b"):
            assert by_name[f"child.{name}"].parent_id == (
                by_name[f"root.{name}"].span_id
            )
            assert by_name[f"root.{name}"].parent_id is None


class TestProcessReattachment:
    def test_export_reattach_rebases_and_reparents(self):
        """The worker-process round trip: export tuples, graft into parent."""
        worker = Tracer()
        with activate(worker):
            with span("lp.chunk", lps=4):
                with span("lp.highs"):
                    pass
        payload = worker.export_spans()
        assert all(isinstance(item, tuple) for item in payload)

        with tracing() as parent:
            with span("engine.batch"):
                anchor = parent.now()
                parent.reattach(
                    payload,
                    parent_id=parent.current_span_id(),
                    anchor=anchor,
                )
                # The real executor keeps the batch span open while its
                # workers run; emulate that so containment is checkable.
                time.sleep(0.002)
        by_name = {s.name: s for s in parent.spans()}
        batch = by_name["engine.batch"]
        chunk = by_name["lp.chunk"]
        highs = by_name["lp.highs"]
        assert chunk.parent_id == batch.span_id
        assert highs.parent_id == chunk.span_id
        assert chunk.tags == {"lps": 4}
        # Re-based onto the parent clock, inside the batch span.
        assert batch.start <= chunk.start <= chunk.end <= batch.end
        # Ids were re-issued from the parent tracer's counter: no collisions.
        ids = [s.span_id for s in parent.spans()]
        assert len(ids) == len(set(ids))

    def test_reattach_empty_payload_is_noop(self):
        tracer = Tracer()
        tracer.reattach([], parent_id=None, anchor=0.0)
        assert len(tracer) == 0


class TestActivateOverride:
    def test_override_routes_spans_away_from_global(self):
        with tracing() as global_tracer:
            local = Tracer()
            with activate(local):
                with span("debug.only"):
                    pass
            with span("global.only"):
                pass
        assert [s.name for s in local.spans()] == ["debug.only"]
        assert [s.name for s in global_tracer.spans()] == ["global.only"]

    def test_none_override_does_not_suppress_global(self):
        with tracing() as tracer:
            with activate(None):
                with span("still.recorded"):
                    pass
        assert [s.name for s in tracer.spans()] == ["still.recorded"]


class TestExports:
    def test_chrome_trace_events(self):
        with tracing() as tracer:
            with span("suite.run", suite="paper"):
                with span("lp.highs"):
                    pass
        payload = tracer.chrome_trace()
        events = payload["traceEvents"]
        assert [e["name"] for e in events] == ["suite.run", "lp.highs"]
        root, leaf = events
        assert root["ph"] == "X" and leaf["ph"] == "X"
        assert root["cat"] == "suite" and leaf["cat"] == "lp"
        assert "parent_id" not in root["args"]
        assert leaf["args"]["parent_id"] == root["args"]["span_id"]
        assert root["ts"] <= leaf["ts"]
        assert leaf["ts"] + leaf["dur"] <= root["ts"] + root["dur"] + 1e-3

    def test_stage_totals_since_mark(self):
        with tracing() as tracer:
            with span("before"):
                pass
            mark = tracer.mark()
            with span("after"):
                pass
        totals = tracer.stage_totals(since=mark)
        assert list(totals) == ["after"]

    def test_stage_summary_self_times_sum_to_root_total(self):
        with tracing() as tracer:
            with span("root"):
                with span("mid"):
                    with span("leaf"):
                        pass
                with span("leaf"):
                    pass
        rows = stage_summary(tracer.spans())
        root_total = next(r["total_s"] for r in rows if r["stage"] == "root")
        self_sum = sum(r["self_s"] for r in rows)
        assert self_sum == pytest.approx(root_total, abs=5e-6)
        for row in rows:
            assert set(row) == {
                "stage", "count", "total_s", "self_s", "p50_ms", "p99_ms"
            }
