"""Hypothesis strategies for random max-min LP instances and LPs.

The strategies generate *valid* instances (non-empty supports, every agent
constrained) of modest size so that exact LP solves inside property tests
stay fast.  They are deliberately biased towards small, awkward shapes --
single agents, singleton supports, repeated coefficients -- because that is
where index-handling bugs live.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro import MaxMinLP

__all__ = ["max_min_instances", "coefficients", "instance_and_solution"]

#: Strictly positive, well-scaled coefficient values.
coefficients = st.floats(
    min_value=0.1, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def max_min_instances(
    draw,
    *,
    max_agents: int = 8,
    max_resources: int = 8,
    max_beneficiaries: int = 6,
    max_support: int = 4,
    unit_weights: bool = False,
):
    """Draw a random valid :class:`MaxMinLP` instance."""
    n_agents = draw(st.integers(min_value=1, max_value=max_agents))
    n_resources = draw(st.integers(min_value=1, max_value=max_resources))
    n_beneficiaries = draw(st.integers(min_value=1, max_value=max_beneficiaries))
    agents = [f"v{j}" for j in range(n_agents)]

    def support(max_size):
        size = draw(st.integers(min_value=1, max_value=min(max_size, n_agents)))
        return draw(
            st.lists(
                st.sampled_from(agents), min_size=size, max_size=size, unique=True
            )
        )

    consumption = {}
    benefit = {}
    for r in range(n_resources):
        for v in support(max_support):
            value = 1.0 if unit_weights else draw(coefficients)
            consumption[(f"i{r}", v)] = value
    # Every agent must consume something (the paper's I_v non-empty rule).
    covered = {v for (_i, v) in consumption}
    extra = n_resources
    for v in agents:
        if v not in covered:
            value = 1.0 if unit_weights else draw(coefficients)
            consumption[(f"i{extra}", v)] = value
            extra += 1
    for k in range(n_beneficiaries):
        for v in support(max_support):
            value = 1.0 if unit_weights else draw(coefficients)
            benefit[(f"k{k}", v)] = value

    return MaxMinLP(agents, consumption, benefit)


@st.composite
def instance_and_solution(draw, **kwargs):
    """Draw an instance together with an arbitrary non-negative activity vector."""
    problem = draw(max_min_instances(**kwargs))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
            min_size=problem.n_agents,
            max_size=problem.n_agents,
        )
    )
    return problem, dict(zip(problem.agents, values))
