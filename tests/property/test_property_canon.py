"""Property tests: canonical view keys are relabeling-invariant and
coefficient-sensitive (the two defining contracts of repro.canon)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MaxMinLP, canonical_view_key, communication_hypergraph
from repro.canon.labeling import canonicalize_local_lp, view_local_structure

from .strategies import max_min_instances


def relabel(problem: MaxMinLP, permutation):
    """Rename every identifier of ``problem`` along a permuted agent order."""
    agents = list(problem.agents)
    shuffled = [agents[i] for i in permutation]
    rename = {a: f"renamed-{idx}" for idx, a in enumerate(shuffled)}
    consumption = {
        ((("r",) + ((i,) if not isinstance(i, tuple) else i)), rename[v]): value
        for (i, v), value in problem.consumption_items()
    }
    benefit = {
        ((("b",) + ((k,) if not isinstance(k, tuple) else k)), rename[v]): value
        for (k, v), value in problem.benefit_items()
    }
    copy = MaxMinLP([rename[a] for a in agents], consumption, benefit)
    return copy, rename


@st.composite
def instance_and_permutation(draw, **kwargs):
    problem = draw(max_min_instances(**kwargs))
    permutation = draw(st.permutations(range(problem.n_agents)))
    return problem, list(permutation)


class TestRelabelingInvariance:
    @settings(max_examples=30, deadline=None)
    @given(instance_and_permutation())
    def test_view_keys_invariant_under_relabeling(self, data):
        problem, permutation = data
        copy, rename = relabel(problem, permutation)
        H = communication_hypergraph(problem)
        H2 = communication_hypergraph(copy)
        for u in problem.agents:
            assert canonical_view_key(problem, u, 1, hypergraph=H) == (
                canonical_view_key(copy, rename[u], 1, hypergraph=H2)
            )

    @settings(max_examples=30, deadline=None)
    @given(instance_and_permutation(max_agents=6, max_resources=6))
    def test_whole_instance_form_invariant(self, data):
        problem, permutation = data
        copy, _rename = relabel(problem, permutation)
        original = canonicalize_local_lp(
            *view_local_structure(problem, frozenset(problem.agents))
        )
        relabelled = canonicalize_local_lp(
            *view_local_structure(copy, frozenset(copy.agents))
        )
        assert original.key == relabelled.key
        assert original.consumption == relabelled.consumption
        assert original.benefit == relabelled.benefit


class TestCoefficientSensitivity:
    @settings(max_examples=30, deadline=None)
    @given(
        max_min_instances(unit_weights=True),
        st.floats(min_value=1.5, max_value=4.0, allow_nan=False),
    )
    def test_perturbing_a_weight_changes_the_key(self, problem, factor):
        agents, cons, bens = view_local_structure(
            problem, frozenset(problem.agents)
        )
        base = canonicalize_local_lp(agents, cons, bens)
        perturbed_cons = list(cons)
        resource, agent, value = perturbed_cons[0]
        perturbed_cons[0] = (resource, agent, value * factor)
        perturbed = canonicalize_local_lp(agents, perturbed_cons, bens)
        assert base.key != perturbed.key

    @settings(max_examples=20, deadline=None)
    @given(max_min_instances())
    def test_key_is_deterministic(self, problem):
        structure = view_local_structure(problem, frozenset(problem.agents))
        assert (
            canonicalize_local_lp(*structure).key
            == canonicalize_local_lp(*structure).key
        )
