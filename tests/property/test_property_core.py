"""Property-based tests for the core invariants of the paper's algorithms.

Every property below is a statement taken directly from the paper:

* the safe solution is feasible and a ``Δ_I^V``-approximation (Section 4),
* the local averaging solution is feasible (Section 5.2) and within the
  per-instance bound ``max_k M_k/m_k · max_i N_i/n_i`` of the optimum
  (Section 5.3), which itself never exceeds ``γ(R-1)·γ(R)``,
* the optimum never decreases when constraints are dropped (sub-instances).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import (
    approximation_ratio,
    communication_hypergraph,
    evaluate_solution,
    local_averaging_solution,
    optimal_objective,
    safe_approximation_guarantee,
    safe_solution,
    theorem3_ratio_bound,
)

from .strategies import instance_and_solution, max_min_instances

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSafeAlgorithmProperties:
    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_safe_solution_always_feasible(self, problem):
        x = safe_solution(problem)
        assert problem.is_feasible(problem.to_array(x), tol=1e-9)

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_safe_solution_within_delta_vi_of_optimum(self, problem):
        optimum = optimal_objective(problem)
        achieved = problem.objective(problem.to_array(safe_solution(problem)))
        ratio = approximation_ratio(optimum, achieved)
        assert ratio <= safe_approximation_guarantee(problem) + 1e-6

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_safe_values_are_positive(self, problem):
        # Every agent consumes at least one resource with a positive
        # coefficient, so its safe value is finite and strictly positive.
        x = safe_solution(problem)
        assert all(value > 0 for value in x.values())


class TestLocalAveragingProperties:
    @given(problem=max_min_instances(max_agents=6, max_resources=6, max_beneficiaries=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_feasible_and_within_proven_bound(self, problem):
        optimum = optimal_objective(problem)
        result = local_averaging_solution(problem, 1)
        assert problem.is_feasible(problem.to_array(result.x), tol=1e-7)
        ratio = approximation_ratio(optimum, result.objective)
        assert ratio <= result.proven_ratio_bound + 1e-5

    @given(problem=max_min_instances(max_agents=6, max_resources=6, max_beneficiaries=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_instance_bound_below_gamma_bound(self, problem):
        H = communication_hypergraph(problem)
        result = local_averaging_solution(problem, 1, hypergraph=H)
        assert result.proven_ratio_bound <= theorem3_ratio_bound(H, 1) + 1e-9

    @given(problem=max_min_instances(max_agents=6, max_resources=6, max_beneficiaries=4))
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_shrink_factors_in_unit_interval(self, problem):
        result = local_averaging_solution(problem, 1)
        assert all(0.0 < beta <= 1.0 + 1e-12 for beta in result.beta.values())


class TestEvaluationProperties:
    @given(pair=instance_and_solution())
    @settings(**COMMON_SETTINGS)
    def test_report_consistent_with_problem(self, pair):
        problem, x = pair
        report = evaluate_solution(problem, x)
        arr = problem.to_array(x)
        assert report.feasible == problem.is_feasible(arr)
        assert report.objective == pytest.approx(problem.objective(arr))
        assert report.violation >= 0.0
        if report.feasible:
            assert report.violation == 0.0

    @given(pair=instance_and_solution())
    @settings(**COMMON_SETTINGS)
    def test_scaling_down_preserves_feasibility(self, pair):
        problem, x = pair
        arr = problem.to_array(x)
        usage = problem.resource_usage(arr)
        scale = 1.0 / max(float(usage.max()), 1.0)
        assert problem.is_feasible(arr * scale, tol=1e-9)


class TestOptimumProperties:
    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_optimum_is_nonnegative_and_achieved(self, problem):
        from repro import optimal_solution

        result = optimal_solution(problem)
        assert result.objective >= -1e-9
        arr = problem.to_array(result.x)
        assert problem.is_feasible(arr, tol=1e-6)
        assert problem.objective(arr) == pytest.approx(result.objective, abs=1e-6)

    @given(problem=max_min_instances(max_agents=6))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_local_subproblem_optimum_at_least_global(self, problem):
        # The local LP (9) over the full agent set only *drops* beneficiaries
        # outside the view (none here) and keeps all constraints, so its
        # optimum equals the global optimum; over a subset of agents it can
        # only be larger or equal because constraints are clipped.
        from repro.lp import solve_max_min

        global_opt = optimal_objective(problem)
        view = set(list(problem.agents)[: max(1, problem.n_agents // 2)])
        local = problem.local_subproblem(view)
        if local.n_beneficiaries == 0:
            return
        local_opt = solve_max_min(local).objective
        assert local_opt >= global_opt - 1e-6
