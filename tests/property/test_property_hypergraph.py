"""Property-based tests for hypergraph distances, balls and growth."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import communication_hypergraph, growth_profile, relative_growth

from .strategies import max_min_instances

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestBallProperties:
    @given(problem=max_min_instances(), radius=st.integers(min_value=0, max_value=3))
    @settings(**COMMON_SETTINGS)
    def test_balls_are_monotone_in_radius(self, problem, radius):
        H = communication_hypergraph(problem)
        for v in H.nodes:
            assert H.ball(v, radius) <= H.ball(v, radius + 1)

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_ball_zero_is_the_vertex_itself(self, problem):
        H = communication_hypergraph(problem)
        for v in H.nodes:
            assert H.ball(v, 0) == frozenset({v})

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_membership_is_symmetric(self, problem):
        # u ∈ B(v, r)  ⟺  v ∈ B(u, r): distances are symmetric.
        H = communication_hypergraph(problem)
        for v in H.nodes:
            for u in H.ball(v, 2):
                assert v in H.ball(u, 2)

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_support_sets_are_cliques_in_the_primal_graph(self, problem):
        # Agents sharing a resource or a party are at distance <= 1.
        H = communication_hypergraph(problem)
        for i in problem.resources:
            support = list(problem.resource_support(i))
            for a in support:
                for b in support:
                    assert H.distance(a, b) <= 1
        for k in problem.beneficiaries:
            support = list(problem.beneficiary_support(k))
            for a in support:
                for b in support:
                    assert H.distance(a, b) <= 1

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_triangle_inequality(self, problem):
        H = communication_hypergraph(problem)
        nodes = list(H.nodes)[:5]
        for a in nodes:
            dist_a = H.distances_from(a)
            for b in nodes:
                dist_b = H.distances_from(b)
                for c in nodes:
                    dab = dist_a.get(b, float("inf"))
                    dbc = dist_b.get(c, float("inf"))
                    dac = dist_a.get(c, float("inf"))
                    assert dac <= dab + dbc


class TestGrowthProperties:
    @given(problem=max_min_instances(), radius=st.integers(min_value=0, max_value=3))
    @settings(**COMMON_SETTINGS)
    def test_growth_at_least_one(self, problem, radius):
        H = communication_hypergraph(problem)
        assert relative_growth(H, radius) >= 1.0

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_profile_consistent_with_pointwise(self, problem):
        H = communication_hypergraph(problem)
        profile = growth_profile(H, 2)
        for r in range(3):
            assert profile.gamma[r] == pytest.approx(relative_growth(H, r))
            assert profile.min_ball_sizes[r] <= profile.max_ball_sizes[r]

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_growth_eventually_reaches_one(self, problem):
        # Once the ball covers the whole connected component the growth stops.
        H = communication_hypergraph(problem)
        assert relative_growth(H, H.n_nodes + 1) == pytest.approx(1.0)
