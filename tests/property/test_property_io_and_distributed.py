"""Property-based tests: serialisation round-trips and distributed equivalence."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro import instance_from_dict, instance_to_dict, safe_solution
from repro.distributed import SafeProgram, SynchronousSimulator

from .strategies import max_min_instances

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestSerialisationProperties:
    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_roundtrip_identity(self, problem):
        assert instance_from_dict(instance_to_dict(problem)) == problem

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_roundtrip_preserves_degree_bounds(self, problem):
        rebuilt = instance_from_dict(instance_to_dict(problem))
        assert rebuilt.degree_bounds() == problem.degree_bounds()


class TestDistributedEquivalence:
    @given(problem=max_min_instances(max_agents=7, max_resources=6, max_beneficiaries=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_safe_program_equals_centralised_safe(self, problem):
        result = SynchronousSimulator(problem).run(SafeProgram())
        central = safe_solution(problem)
        for v in problem.agents:
            assert result.x[v] == pytest.approx(central[v], abs=1e-12)

    @given(problem=max_min_instances(max_agents=7, max_resources=6, max_beneficiaries=4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_simulated_safe_solution_is_feasible(self, problem):
        result = SynchronousSimulator(problem).run(SafeProgram())
        assert result.feasible
