"""Property-based tests for the LP substrate (simplex vs HiGHS, reductions)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.lp import (
    LinearProgram,
    LPStatus,
    maxmin_to_lp,
    solve_lp,
    solve_max_min,
    solve_simplex,
)

from .strategies import max_min_instances

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def packing_lps(draw, max_vars: int = 5, max_rows: int = 4):
    """Random packing LPs: maximise a positive objective under A x <= b."""
    n = draw(st.integers(min_value=1, max_value=max_vars))
    m = draw(st.integers(min_value=1, max_value=max_rows))
    c = draw(
        hnp.arrays(
            np.float64,
            (n,),
            elements=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        )
    )
    # Coefficients are either exactly zero or well-scaled (>= 0.1): subnormal
    # values such as 1e-262 would make the LP numerically unbounded and the
    # comparison between backends meaningless.
    A = draw(
        hnp.arrays(
            np.float64,
            (m, n),
            elements=st.one_of(
                st.just(0.0),
                st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
            ),
        )
    )
    b = draw(
        hnp.arrays(
            np.float64,
            (m,),
            elements=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        )
    )
    # Guarantee boundedness: every variable appears in some constraint.
    A = A.copy()
    for j in range(n):
        if A[:, j].max() <= 0:
            A[0, j] = 1.0
    return LinearProgram(c=-c, A_ub=A, b_ub=b)


class TestSimplexAgainstHiGHS:
    @given(lp=packing_lps())
    @settings(**COMMON_SETTINGS)
    def test_same_optimum_on_random_packing_lps(self, lp):
        ours = solve_simplex(lp)
        reference = solve_lp(lp, backend="scipy")
        assert reference.status is LPStatus.OPTIMAL
        assert ours.status is LPStatus.OPTIMAL
        assert ours.objective == pytest.approx(reference.objective, abs=1e-6)
        assert lp.is_feasible(ours.x, tol=1e-6)

    @given(lp=packing_lps(max_vars=4, max_rows=3))
    @settings(**COMMON_SETTINGS)
    def test_simplex_solution_not_better_than_reference(self, lp):
        # Minimisation: the simplex objective can never be lower than the
        # true optimum (that would mean infeasibility or a solver bug).
        ours = solve_simplex(lp)
        reference = solve_lp(lp, backend="scipy")
        assert ours.objective >= reference.objective - 1e-6


class TestMaxMinReductionProperties:
    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_reduction_dimensions(self, problem):
        lp = maxmin_to_lp(problem)
        assert lp.n_variables == problem.n_agents + 1
        assert lp.n_inequalities == problem.n_resources + problem.n_beneficiaries

    @given(problem=max_min_instances(max_agents=6, max_resources=5, max_beneficiaries=4))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
    def test_backends_agree_on_maxmin_instances(self, problem):
        scipy_result = solve_max_min(problem, backend="scipy")
        simplex_result = solve_max_min(problem, backend="simplex")
        assert simplex_result.objective == pytest.approx(
            scipy_result.objective, rel=1e-5, abs=1e-7
        )
        assert problem.is_feasible(problem.to_array(simplex_result.x), tol=1e-6)

    @given(problem=max_min_instances())
    @settings(**COMMON_SETTINGS)
    def test_optimum_dominates_any_feasible_solution(self, problem):
        # The safe solution is feasible, so its objective cannot beat ω*.
        from repro import safe_solution

        optimum = solve_max_min(problem).objective
        achieved = problem.objective(problem.to_array(safe_solution(problem)))
        assert achieved <= optimum + 1e-6
