"""Property-based tests: batched LP solving vs the per-LP reference path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.engine.fingerprint import (
    fingerprint_request,
    fingerprint_view_requests,
)
from repro.lp import (
    LinearProgram,
    LPStatus,
    solve_lp,
    solve_lp_batch,
)

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def mixed_lps(draw, max_vars: int = 4, max_rows: int = 3):
    """One random LP that may be optimal, infeasible or unbounded.

    Three deliberate regimes: well-scaled bounded packing LPs (optimal),
    LPs with a contradictory constraint pair (infeasible), and LPs with a
    profitable unconstrained direction (unbounded).
    """
    kind = draw(st.sampled_from(["optimal", "infeasible", "unbounded"]))
    n = draw(st.integers(min_value=1, max_value=max_vars))
    m = draw(st.integers(min_value=1, max_value=max_rows))
    c = draw(
        hnp.arrays(
            np.float64,
            (n,),
            elements=st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
        )
    )
    A = draw(
        hnp.arrays(
            np.float64,
            (m, n),
            elements=st.one_of(
                st.just(0.0),
                st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
            ),
        )
    ).copy()
    b = draw(
        hnp.arrays(
            np.float64,
            (m,),
            elements=st.floats(min_value=0.5, max_value=4.0, allow_nan=False),
        )
    )
    if kind == "optimal":
        for j in range(n):  # bounded: every variable constrained
            if A[:, j].max() <= 0:
                A[0, j] = 1.0
        return LinearProgram(c=-c, A_ub=A, b_ub=b)
    if kind == "infeasible":
        # x_0 <= 1 and -x_0 <= -2 cannot both hold.
        A_rows = np.vstack([A, np.eye(1, n), -np.eye(1, n)])
        b_rows = np.concatenate([b, [1.0], [-2.0]])
        return LinearProgram(c=c, A_ub=A_rows, b_ub=b_rows)
    # Unbounded: maximise x_0 with x_0 absent from every constraint.
    A[:, 0] = 0.0
    c_dir = np.zeros(n)
    c_dir[0] = -1.0
    return LinearProgram(c=c_dir, A_ub=A, b_ub=b)


class TestStackedEqualsPerLP:
    @given(lps=st.lists(mixed_lps(), min_size=0, max_size=8))
    @settings(**COMMON_SETTINGS)
    def test_statuses_and_objectives_match(self, lps):
        stacked = solve_lp_batch(lps, strategy="stacked")
        reference = [solve_lp(lp) for lp in lps]
        assert len(stacked) == len(lps)
        for lp, fast, slow in zip(lps, stacked, reference):
            assert fast.status is slow.status
            if slow.status is LPStatus.OPTIMAL:
                assert fast.objective == pytest.approx(
                    slow.objective, abs=1e-7
                )
                assert lp.is_feasible(fast.x, tol=1e-6)

    @given(lp=mixed_lps())
    @settings(**COMMON_SETTINGS)
    def test_batch_of_one_bit_identical(self, lp):
        (batched,) = solve_lp_batch([lp], strategy="stacked")
        solo = solve_lp(lp)
        assert batched.status is solo.status
        if solo.x is not None:
            np.testing.assert_array_equal(batched.x, solo.x)

    @given(
        lps=st.lists(mixed_lps(), min_size=1, max_size=8),
        chunk=st.integers(min_value=1, max_value=4),
    )
    @settings(**COMMON_SETTINGS)
    def test_chunked_statuses_match_unchunked(self, lps, chunk):
        a = solve_lp_batch(lps, strategy="stacked", chunk_size=chunk)
        b = solve_lp_batch(lps, strategy="stacked")
        assert [r.status for r in a] == [r.status for r in b]


@st.composite
def structured_groups(draw, n_vars: int = 5, n_rows: int = 4):
    """A batch of LPs sharing one sparsity pattern (different weights)."""
    count = draw(st.integers(min_value=2, max_value=6))
    pattern = draw(
        hnp.arrays(np.bool_, (n_rows, n_vars), elements=st.booleans())
    ).copy()
    pattern[0, :] = True  # bounded
    lps = []
    for _ in range(count):
        values = draw(
            hnp.arrays(
                np.float64,
                (n_rows, n_vars),
                elements=st.floats(
                    min_value=0.2, max_value=2.0, allow_nan=False
                ),
            )
        )
        c = draw(
            hnp.arrays(
                np.float64,
                (n_vars,),
                elements=st.floats(
                    min_value=0.1, max_value=2.0, allow_nan=False
                ),
            )
        )
        lps.append(
            LinearProgram(
                c=-c, A_ub=np.where(pattern, values, 0.0), b_ub=np.ones(n_rows)
            )
        )
    return lps


class TestGroupedKernel:
    @given(lps=structured_groups())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    def test_warm_started_siblings_match_cold(self, lps):
        grouped = solve_lp_batch(lps, backend="simplex", strategy="grouped")
        for lp, fast in zip(lps, grouped):
            cold = solve_lp_batch(
                [lp], backend="simplex", strategy="grouped"
            )[0]
            assert fast.status is cold.status
            assert fast.objective == pytest.approx(cold.objective, abs=1e-9)
            reference = solve_lp(lp, backend="scipy")
            assert fast.objective == pytest.approx(
                reference.objective, abs=1e-6
            )


_ID_CHARS = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), max_size=8
)


class TestBatchFingerprints:
    @given(
        views=st.lists(
            st.lists(_ID_CHARS, min_size=0, max_size=5).map(sorted),
            min_size=0,
            max_size=6,
        ),
        backend=st.sampled_from(["scipy", "simplex"]),
        strategy=st.sampled_from([None, "stacked", "grouped", "auto"]),
    )
    @settings(**COMMON_SETTINGS)
    def test_view_request_template_equals_per_unit(
        self, views, backend, strategy
    ):
        instance_fp = "f" * 64
        extra = None if strategy is None else {"lp_strategy": strategy}
        batched = fingerprint_view_requests(
            instance_fp, views, backend=backend, extra_params=extra
        )
        reference = [
            fingerprint_request(
                None,
                "local_lp_view",
                backend=backend,
                params={**(extra or {}), "view": list(view)},
                instance_fingerprint=instance_fp,
            )
            for view in views
        ]
        assert batched == reference
