"""Property tests: the scenario wire format is exact, strict and key-stable.

Three contracts back the serving layer's use of spec JSON as a request
format: the round trip through :meth:`ScenarioSpec.to_json` is exact, the
``scenario_id`` request key is invariant under JSON key reordering (it
must not depend on dict iteration order), and malformed documents --
unknown fields, wrongly-typed values -- are rejected with precise errors
instead of being silently coerced into some other request.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios.spec import ScenarioSpec, SuiteSpec

#: JSON-compatible parameter values the grid axes accept.
param_values = st.one_of(
    st.integers(min_value=-100, max_value=100),
    st.floats(min_value=-10, max_value=10, allow_nan=False),
    st.text(alphabet="abcxyz", min_size=1, max_size=6),
    st.booleans(),
)

identifiers = st.text(alphabet="abcdefgh_", min_size=1, max_size=10)


@st.composite
def scenario_specs(draw):
    """Structurally valid specs (families need not exist in the registry)."""
    return ScenarioSpec(
        family=draw(identifiers),
        params=draw(
            st.dictionaries(identifiers, param_values, min_size=0, max_size=4)
        ),
        seed=draw(st.one_of(st.none(), st.integers(0, 2**31))),
        radii=tuple(
            draw(st.lists(st.integers(1, 9), min_size=1, max_size=4))
        ),
        backend=draw(st.sampled_from(["scipy", "simplex"])),
        label=draw(st.one_of(st.none(), st.text(max_size=12))),
    )


class TestRoundTrip:
    @given(spec=scenario_specs())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_is_exact(self, spec):
        restored = ScenarioSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.scenario_id == spec.scenario_id

    @given(spec=scenario_specs(), seed=st.randoms(use_true_random=False))
    @settings(max_examples=60, deadline=None)
    def test_scenario_id_invariant_under_key_reordering(self, spec, seed):
        data = spec.to_dict()
        shuffled_keys = list(data)
        seed.shuffle(shuffled_keys)
        reordered = json.dumps({key: data[key] for key in shuffled_keys})
        assert ScenarioSpec.from_json(reordered).scenario_id == spec.scenario_id

    @given(spec=scenario_specs())
    @settings(max_examples=40, deadline=None)
    def test_label_never_affects_the_scenario_id(self, spec):
        relabeled = ScenarioSpec(
            family=spec.family,
            params=spec.params,
            seed=spec.seed,
            radii=spec.radii,
            backend=spec.backend,
            label="something-else",
        )
        assert relabeled.scenario_id == spec.scenario_id


class TestStrictness:
    @given(spec=scenario_specs(), junk=identifiers)
    @settings(max_examples=40, deadline=None)
    def test_unknown_fields_are_rejected_by_name(self, spec, junk):
        data = spec.to_dict()
        if junk in ScenarioSpec.FIELDS:
            return
        data[junk] = 1
        with pytest.raises(ValueError, match=junk):
            ScenarioSpec.from_dict(data)

    @given(spec=scenario_specs(), bad=st.sampled_from([1.5, "two", True, -3, 0]))
    @settings(max_examples=40, deadline=None)
    def test_wrongly_typed_radii_are_rejected(self, spec, bad):
        data = spec.to_dict()
        data["radii"] = [bad]
        with pytest.raises(ValueError, match="radii"):
            ScenarioSpec.from_dict(data)

    @given(spec=scenario_specs())
    @settings(max_examples=20, deadline=None)
    def test_non_mapping_params_are_rejected(self, spec):
        data = spec.to_dict()
        data["params"] = [1, 2, 3]
        with pytest.raises(ValueError, match="params"):
            ScenarioSpec.from_dict(data)

    def test_missing_family_is_rejected(self):
        with pytest.raises(ValueError, match="family"):
            ScenarioSpec.from_dict({"params": {}})

    def test_boolean_seed_is_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec.from_dict({"family": "cycle", "seed": True})

    def test_top_level_non_object_is_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            ScenarioSpec.from_json("[]")
        with pytest.raises(ValueError, match="JSON object"):
            SuiteSpec.from_json('"a-string"')


class TestSuiteRoundTrip:
    @given(
        name=identifiers,
        grids=st.lists(
            st.fixed_dictionaries(
                {
                    "family": identifiers,
                    "params": st.dictionaries(
                        identifiers,
                        st.one_of(
                            param_values,
                            st.lists(param_values, min_size=1, max_size=3),
                        ),
                        max_size=3,
                    ),
                    "radii": st.lists(st.integers(1, 5), min_size=1, max_size=3),
                }
            ),
            min_size=0,
            max_size=3,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_suite_round_trip_preserves_expansion(self, name, grids):
        suite = SuiteSpec.from_dict({"name": name, "grids": grids})
        restored = SuiteSpec.from_json(suite.to_json())
        assert restored == suite
        assert [spec.scenario_id for spec in restored.expand()] == [
            spec.scenario_id for spec in suite.expand()
        ]

    def test_suite_unknown_field_is_rejected(self):
        with pytest.raises(ValueError, match="surprise"):
            SuiteSpec.from_dict({"name": "s", "surprise": 1})

    def test_grid_unknown_field_is_rejected(self):
        with pytest.raises(ValueError, match="oops"):
            SuiteSpec.from_dict(
                {"name": "s", "grids": [{"family": "cycle", "oops": 2}]}
            )

    def test_spec_version_field_is_accepted(self):
        suite = SuiteSpec.from_dict({"name": "s", "spec_version": 1})
        assert suite.name == "s"
