"""Property-based tests for solution certificates (repro.lp.verify).

Soundness both ways, over random instances:

* **completeness** — whatever the solver returns, the independent
  certificate accepts (the checker's arithmetic agrees with the solver's
  within tolerance);
* **sensitivity** — perturbing a single coordinate or the claimed
  objective beyond the tolerance makes the certificate reject.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import VerificationError
from repro.lp import DEFAULT_TOL, solve_max_min, verify_solution
from repro.lp.maxmin import CompiledMaxMin

from .strategies import max_min_instances

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@settings(**COMMON_SETTINGS)
@given(problem=max_min_instances())
def test_certificate_accepts_every_solver_output(problem):
    result = solve_max_min(problem)
    cert = verify_solution(problem, result)
    assert cert.kind == "maxmin"
    assert cert.max_violation <= DEFAULT_TOL
    assert cert.objective_error <= DEFAULT_TOL


@settings(**COMMON_SETTINGS)
@given(
    problem=max_min_instances(),
    bump=st.floats(min_value=0.01, max_value=10.0),
)
def test_certificate_rejects_inflated_objective(problem, bump):
    result = solve_max_min(problem)
    with pytest.raises(VerificationError):
        verify_solution(problem, (result.x, result.objective + bump))


@settings(**COMMON_SETTINGS)
@given(
    problem=max_min_instances(),
    data=st.data(),
    bump=st.floats(min_value=0.5, max_value=10.0),
)
def test_certificate_rejects_single_perturbed_coordinate(problem, data, bump):
    result = solve_max_min(problem)
    agents = list(problem.agents)
    victim = data.draw(st.sampled_from(agents))

    x = dict(result.x)
    x[victim] = x[victim] + bump
    # Raising one agent's activity by >= 0.5 either overshoots a resource
    # constraint (every agent supports >= 1 resource with weight >= 0.1,
    # budgets are 1) or -- if the instance is so loose every constraint
    # still holds -- strictly raises some beneficiary's utility, and with
    # it the recomputed min-utility away from the claimed objective only
    # when that agent was the bottleneck; accept either rejection or a
    # still-valid certificate, but never a certificate that lies about
    # feasibility.
    try:
        verify_solution(problem, (x, result.objective))
    except VerificationError:
        return
    # If it passed, the perturbed point must genuinely still be feasible
    # and still attain the claimed objective -- check by hand.
    compiled = CompiledMaxMin.from_problem(problem)
    vec = np.asarray([x[v] for v in problem.agents])
    loads = compiled.A @ vec
    assert np.all(loads <= 1.0 + DEFAULT_TOL)


@settings(**COMMON_SETTINGS)
@given(
    problem=max_min_instances(),
    data=st.data(),
)
def test_certificate_rejects_negative_coordinate(problem, data):
    result = solve_max_min(problem)
    victim = data.draw(st.sampled_from(list(problem.agents)))
    x = dict(result.x)
    x[victim] = -0.5
    with pytest.raises(VerificationError):
        verify_solution(problem, (x, result.objective))


@settings(**COMMON_SETTINGS)
@given(problem=max_min_instances())
def test_certificate_tolerance_is_not_brittle(problem):
    """Noise far below the tolerance must never cause a rejection."""
    result = solve_max_min(problem)
    x = {agent: value + 1e-12 for agent, value in result.x.items()}
    verify_solution(problem, (x, result.objective))
