"""Property tests: the vectorized view pipeline equals the scalar one.

Three layers, three contracts (random bounded-degree instances, the awkward
shapes the shared strategies are biased towards):

* batch balls == per-agent ``Hypergraph.ball``;
* CSR-sliced local LPs == ``MaxMinLP.local_subproblem`` (and the raw
  structures == ``view_local_structure``);
* batch canonical forms == per-view ``CanonicalIndex.canonical_form`` —
  same keys, same orders, hence bit-identical solve paths.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import communication_hypergraph
from repro.canon.labeling import CanonicalIndex, view_local_structure
from repro.views import ViewAtlas, batch_balls

from .strategies import max_min_instances


@st.composite
def instance_and_radius(draw, **kwargs):
    problem = draw(max_min_instances(**kwargs))
    radius = draw(st.integers(min_value=1, max_value=3))
    return problem, radius


class TestBatchBallsEqualScalar:
    @settings(max_examples=40, deadline=None)
    @given(instance_and_radius())
    def test_batch_balls_match_per_agent_bfs(self, case):
        problem, radius = case
        H = communication_hypergraph(problem)
        assert batch_balls(H, radius) == {
            u: H.ball(u, radius) for u in H.nodes
        }


class TestAtlasEqualsScalarExtraction:
    @settings(max_examples=30, deadline=None)
    @given(instance_and_radius())
    def test_csr_sliced_subproblems_match_local_subproblem(self, case):
        problem, radius = case
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, radius, hypergraph=H)
        for u in problem.agents:
            view = H.ball(u, radius)
            assert atlas.subproblem(u) == problem.local_subproblem(view)

    @settings(max_examples=30, deadline=None)
    @given(instance_and_radius())
    def test_structures_match_view_local_structure(self, case):
        problem, radius = case
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, radius, hypergraph=H)
        for u in problem.agents:
            scalar_agents, scalar_cons, scalar_bens = view_local_structure(
                problem, H.ball(u, radius)
            )
            agents, cons, bens = atlas.local_structure(u)
            assert set(agents) == set(scalar_agents)
            assert set(cons) == set(scalar_cons)
            assert set(bens) == set(scalar_bens)


class TestBatchCanonEqualsScalarCanon:
    @settings(max_examples=25, deadline=None)
    @given(instance_and_radius(max_agents=7))
    def test_batch_forms_equal_per_view_canonical_forms(self, case):
        problem, radius = case
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, radius, hypergraph=H)
        batch_forms = atlas.canonical_forms(CanonicalIndex())
        index = CanonicalIndex()
        for u in problem.agents:
            agents, cons, bens = view_local_structure(
                problem, H.ball(u, radius)
            )
            scalar_form = index.canonical_form(agents, cons, bens)
            assert batch_forms[u] == scalar_form
