"""SIGKILL chaos: real ``repro suite run`` subprocesses killed mid-write.

Each test launches the actual CLI in a subprocess with a ``crash-process``
fault plan installed, which SIGKILLs the process at a durability seam --
mid checkpoint append (``suite.checkpoint``) or between a cache entry's
tmp-file write and its atomic rename (``cache.disk.write``).  The process
dies with no cleanup of any kind; the tests then prove the recovery
story end to end:

* ``--resume`` reproduces the uninterrupted run's report **bit-identically**
  (after stripping wall-clock noise with
  :func:`repro.scenarios.canonical_report`);
* a fully-checkpointed resume performs **zero** re-solves;
* the torn journal tail is tolerated, never counted as damage;
* the stranded ``.tmp`` of a torn cache write is swept by
  ``repro cache prune``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenarios import CheckpointJournal, canonical_report

REPO = Path(__file__).resolve().parents[2]

SUITE = {
    "spec_version": 1,
    "name": "chaos",
    "grids": [
        {
            "family": "cycle",
            "params": {"n": [8, 10, 12]},
            "radii": [1],
            "backend": "scipy",
        }
    ],
}


def kill_plan(seam, *, every):
    return {
        "name": "chaos-kill",
        "seed": 0,
        "faults": [
            {
                "seam": seam,
                "kind": "crash-process",
                "every": every,
                "max_injections": 1,
            }
        ],
    }


def repro(*argv, timeout=180):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    env.pop("REPRO_FAULT_PLAN", None)
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO,
    )


@pytest.fixture()
def workdir(tmp_path):
    (tmp_path / "suite.json").write_text(json.dumps(SUITE))
    return tmp_path


def run_suite(workdir, *extra, fault_plan=None):
    argv = [
        "suite",
        "run",
        str(workdir / "suite.json"),
        "--cache-dir",
        str(workdir / "cache"),
        "--checkpoint",
        str(workdir / "ck.ndjson"),
        *extra,
    ]
    if fault_plan is not None:
        plan_path = workdir / "plan.json"
        plan_path.write_text(json.dumps(fault_plan))
        argv += ["--fault-plan", str(plan_path)]
    return repro(*argv)


def control_report(workdir):
    """The uninterrupted reference run (its own cache, its own journal)."""
    out = workdir / "control"
    proc = repro(
        "suite",
        "run",
        str(workdir / "suite.json"),
        "--cache-dir",
        str(workdir / "control-cache"),
        "--out",
        str(out),
    )
    assert proc.returncode == 0, proc.stderr
    return canonical_report(json.loads((out / "results.json").read_text()))


class TestCheckpointSeamKill:
    def test_kill_mid_append_then_resume_bit_identical(self, workdir):
        crashed = run_suite(
            workdir, fault_plan=kill_plan("suite.checkpoint", every=2)
        )
        assert crashed.returncode == -signal.SIGKILL, (
            f"expected a SIGKILL death, got rc={crashed.returncode}\n"
            f"stdout: {crashed.stdout}\nstderr: {crashed.stderr}"
        )

        # The journal holds one intact line plus the torn half-line the
        # crash left behind -- tolerated, never trusted, never "damage".
        load = CheckpointJournal.load(workdir / "ck.ndjson")
        assert load.lines_ok == 1
        assert load.torn_tail is True
        assert load.lines_skipped == 0

        resumed = run_suite(workdir, "--resume", "--out", str(workdir / "out"))
        assert resumed.returncode == 0, resumed.stderr
        assert "1 scenario(s) restored, 2 solved this run" in resumed.stdout

        report = canonical_report(
            json.loads((workdir / "out" / "results.json").read_text())
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(
            control_report(workdir), sort_keys=True
        )

    def test_fully_checkpointed_resume_does_zero_resolves(self, workdir):
        clean = run_suite(workdir)
        assert clean.returncode == 0, clean.stderr
        assert CheckpointJournal.load(workdir / "ck.ndjson").lines_ok == 3

        resumed = run_suite(workdir, "--resume", "--out", str(workdir / "out"))
        assert resumed.returncode == 0, resumed.stderr
        assert "3 scenario(s) restored, 0 solved this run" in resumed.stdout

        raw = json.loads((workdir / "out" / "results.json").read_text())
        # Zero engine activity: every scenario was restored from the
        # journal, so the engine never solved, deduped or even batched.
        assert raw["engine_stats"].get("executed", 0) == 0
        assert raw["engine_stats"].get("units", 0) == 0
        assert raw["cache_stats"].get("puts", 0) == 0

        report = canonical_report(raw)
        assert json.dumps(report, sort_keys=True) == json.dumps(
            control_report(workdir), sort_keys=True
        )


class TestCacheWriteSeamKill:
    def test_kill_between_tmp_write_and_rename(self, workdir):
        crashed = run_suite(
            workdir, fault_plan=kill_plan("cache.disk.write", every=1)
        )
        assert crashed.returncode == -signal.SIGKILL, (
            f"expected a SIGKILL death, got rc={crashed.returncode}\n"
            f"stdout: {crashed.stdout}\nstderr: {crashed.stderr}"
        )

        cache_dir = workdir / "cache"
        stranded = list(cache_dir.rglob("*.tmp"))
        assert stranded, "the crash should strand exactly the torn .tmp"
        # The half-written entry never got its atomic rename: no .json
        # ever becomes visible torn.
        assert all(
            json.loads(p.read_text()) for p in cache_dir.rglob("*.json")
        )

        # Offline hygiene: prune sweeps the orphan regardless of age.
        pruned = repro(
            "cache",
            "prune",
            "--cache-dir",
            str(cache_dir),
            "--max-bytes",
            "1000000000",
        )
        assert pruned.returncode == 0, pruned.stderr
        assert "swept 1 orphaned .tmp file(s)" in pruned.stdout
        assert not list(cache_dir.rglob("*.tmp"))

        resumed = run_suite(workdir, "--resume", "--out", str(workdir / "out"))
        assert resumed.returncode == 0, resumed.stderr
        assert not list(cache_dir.rglob("*.tmp")), (
            "the resumed run must not inherit stranded tmp files"
        )

        report = canonical_report(
            json.loads((workdir / "out" / "results.json").read_text())
        )
        assert json.dumps(report, sort_keys=True) == json.dumps(
            control_report(workdir), sort_keys=True
        )
