"""Scenario certificates: every field is tied down by some identity."""

from __future__ import annotations

import pytest

from repro.exceptions import VerificationError
from repro.scenarios import (
    ScenarioSpec,
    SuiteRunner,
    certify_scenario_result,
)

SPEC = ScenarioSpec(
    family="cycle", params={"n": 8}, radii=(1, 2), backend="scipy"
)


@pytest.fixture(scope="module")
def payload():
    (result,) = list(SuiteRunner().run([SPEC]))
    return result.as_dict()


def certify(payload):
    return certify_scenario_result(SPEC, payload)


class TestAccepts:
    def test_clean_payload_passes(self, payload):
        outcome = certify(payload)
        assert outcome["checks"] >= 10

    def test_json_round_trip_passes(self, payload):
        import json

        certify(json.loads(json.dumps(payload)))


class TestRejects:
    def test_not_a_mapping(self):
        with pytest.raises(VerificationError, match="not a mapping"):
            certify(None)

    def test_missing_field(self, payload):
        damaged = dict(payload)
        damaged.pop("optimum")
        with pytest.raises(VerificationError, match="missing fields"):
            certify(damaged)

    def test_wrong_scenario_id(self, payload):
        damaged = dict(payload, scenario_id="0" * 64)
        with pytest.raises(VerificationError, match="scenario_id"):
            certify(damaged)

    def test_embedded_spec_swap(self, payload):
        other = ScenarioSpec(
            family="cycle", params={"n": 10}, radii=(1, 2), backend="scipy"
        )
        damaged = dict(payload, spec=other.to_dict())
        with pytest.raises(VerificationError, match="different scenario"):
            certify(damaged)

    @pytest.mark.parametrize(
        "field, bump, match",
        [
            ("optimum", 0.25, "ratio"),
            ("safe_objective", 0.25, "safe_objective"),
            ("safe_ratio", 0.25, "safe_ratio"),
            ("safe_guarantee", 1.0, "safe_guarantee"),
            ("n_agents", 1, "shape"),
        ],
    )
    def test_single_field_perturbation_detected(
        self, payload, field, bump, match
    ):
        damaged = dict(payload)
        damaged[field] = damaged[field] + bump
        with pytest.raises(VerificationError, match=match):
            certify(damaged)

    def test_radius_objective_perturbation_detected(self, payload):
        damaged = dict(payload)
        radii = [dict(entry) for entry in damaged["radii"]]
        radii[0]["objective"] = radii[0]["objective"] + 0.25
        damaged["radii"] = radii
        with pytest.raises(VerificationError):
            certify(damaged)

    def test_radius_list_truncation_detected(self, payload):
        damaged = dict(payload, radii=list(payload["radii"])[:1])
        with pytest.raises(VerificationError, match="radii"):
            certify(damaged)

    def test_nonfinite_optimum_detected(self, payload):
        damaged = dict(payload, optimum=float("nan"))
        with pytest.raises(VerificationError, match="finite"):
            certify(damaged)

    def test_theorem_bound_enforced(self, payload):
        # An optimum above Δ_I^V · safe would contradict the paper's
        # Theorem -- the certificate treats that as corruption.
        damaged = dict(
            payload,
            optimum=payload["safe_guarantee"] * payload["safe_objective"]
            * 10.0,
        )
        with pytest.raises(VerificationError):
            certify(damaged)
