"""Checkpoint journal durability and exact suite resume."""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    CheckpointJournal,
    ScenarioSpec,
    SuiteRunner,
    canonical_report,
)
from repro.scenarios.runner import ScenarioResult


def specs():
    return [
        ScenarioSpec(
            family="cycle", params={"n": 8 + 2 * i}, radii=(1, 2),
            backend="scipy",
        )
        for i in range(3)
    ]


def run_results(scenario_specs):
    return list(SuiteRunner().run(scenario_specs))


@pytest.fixture(scope="module")
def results():
    return run_results(specs())


class TestJournal:
    def test_round_trip(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        for result in results:
            journal.append(result.as_dict())
        load = CheckpointJournal.load(journal.path)
        assert load.lines_ok == 3
        assert load.lines_skipped == 0
        assert not load.torn_tail
        assert set(load.completed) == {r.scenario_id for r in results}
        restored = load.completed[results[0].scenario_id]
        assert restored == results[0].as_dict()

    def test_missing_file_is_empty(self, tmp_path):
        load = CheckpointJournal.load(tmp_path / "nope.ndjson")
        assert load.completed == {}
        assert not load.torn_tail

    def test_torn_tail_tolerated(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        for result in results[:2]:
            journal.append(result.as_dict())
        text = journal.path.read_text()
        lines = text.splitlines(keepends=True)
        # Simulate a crash mid-append: half a third line, no newline.
        journal.path.write_text(text + lines[0][: len(lines[0]) // 2])

        load = CheckpointJournal.load(journal.path)
        assert load.lines_ok == 2
        assert load.torn_tail
        assert load.lines_skipped == 0, "a torn tail is not interior damage"

    def test_damaged_interior_line_skipped(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        for result in results:
            journal.append(result.as_dict())
        lines = journal.path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # torn *interior* line
        journal.path.write_text("\n".join(lines) + "\n")

        load = CheckpointJournal.load(journal.path)
        assert load.lines_ok == 2
        assert load.lines_skipped == 1
        assert not load.torn_tail
        assert results[1].scenario_id not in load.completed

    def test_digest_tamper_detected(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        journal.append(results[0].as_dict())
        record = json.loads(journal.path.read_text())
        record["result"]["optimum"] = record["result"]["optimum"] + 1.0
        journal.path.write_text(json.dumps(record, sort_keys=True) + "\n")

        load = CheckpointJournal.load(journal.path)
        assert load.lines_ok == 0
        assert load.lines_skipped == 1
        assert load.completed == {}

    def test_wrong_version_skipped(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        journal.append(results[0].as_dict())
        record = json.loads(journal.path.read_text())
        record["v"] = 99
        journal.path.write_text(json.dumps(record, sort_keys=True) + "\n")
        assert CheckpointJournal.load(journal.path).lines_skipped == 1

    def test_fresh_truncates(self, tmp_path, results):
        path = tmp_path / "ck.ndjson"
        CheckpointJournal(path).append(results[0].as_dict())
        CheckpointJournal(path, fresh=True)
        assert not path.exists()

    def test_last_append_wins_on_duplicate(self, tmp_path, results):
        journal = CheckpointJournal(tmp_path / "ck.ndjson")
        first = results[0].as_dict()
        journal.append(first)
        altered = dict(first)
        altered["seconds"] = 123.0
        journal.append(altered)
        load = CheckpointJournal.load(journal.path)
        assert load.lines_ok == 2
        assert load.completed[first["scenario_id"]]["seconds"] == 123.0


class TestScenarioResultRoundTrip:
    def test_from_dict_round_trip(self, results):
        for result in results:
            restored = ScenarioResult.from_dict(result.as_dict())
            assert restored.as_dict() == result.as_dict()
            assert restored.spec.scenario_id == result.scenario_id


class TestCanonicalReport:
    def test_strips_volatile_fields(self, results):
        report = SuiteRunner().run_suite(specs()).as_dict()
        canon = canonical_report(report)
        assert "seconds" not in canon
        assert "engine_stats" not in canon
        assert "cache_stats" not in canon
        assert all("seconds" not in row for row in canon["results"])
        assert len(canon["results"]) == 3
        # Deterministic fields survive untouched.
        assert canon["results"][0]["optimum"] == report["results"][0]["optimum"]

    def test_two_fresh_runs_are_canonically_identical(self):
        a = canonical_report(SuiteRunner().run_suite(specs()).as_dict())
        b = canonical_report(SuiteRunner().run_suite(specs()).as_dict())
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class TestRunSuiteCheckpoint:
    def test_checkpoint_written(self, tmp_path):
        path = tmp_path / "ck.ndjson"
        report = SuiteRunner().run_suite(specs(), checkpoint=path)
        assert report.restored == 0
        assert CheckpointJournal.load(path).lines_ok == 3

    def test_resume_skips_completed_exactly(self, tmp_path):
        path = tmp_path / "ck.ndjson"
        full = SuiteRunner().run_suite(specs(), checkpoint=path)

        # Drop the final journal line: scenario 3 "never completed".
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:2]))

        runner = SuiteRunner()
        report = runner.run_suite(specs(), checkpoint=path, resume=True)
        assert report.restored == 2
        assert runner.engine.stats.executed > 0, "missing scenario re-solved"
        assert canonical_report(report.as_dict()) == canonical_report(
            full.as_dict()
        )
        # The journal was healed: all three scenarios durable again.
        assert CheckpointJournal.load(path).lines_ok == 3

    def test_resume_with_complete_journal_does_zero_work(self, tmp_path):
        path = tmp_path / "ck.ndjson"
        full = SuiteRunner().run_suite(specs(), checkpoint=path)

        runner = SuiteRunner()
        report = runner.run_suite(specs(), checkpoint=path, resume=True)
        assert report.restored == 3
        assert runner.engine.stats.executed == 0
        assert runner.engine.stats.units == 0, "restore must bypass the engine"
        assert canonical_report(report.as_dict()) == canonical_report(
            full.as_dict()
        )

    def test_no_resume_truncates_existing_journal(self, tmp_path):
        path = tmp_path / "ck.ndjson"
        SuiteRunner().run_suite(specs(), checkpoint=path)
        runner = SuiteRunner()
        report = runner.run_suite(specs(), checkpoint=path)
        assert report.restored == 0
        assert runner.engine.stats.executed > 0

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="resume"):
            SuiteRunner().run_suite(specs(), resume=True)
