"""Tests for the instance-family registry."""

from __future__ import annotations

import pytest

from repro import MaxMinLP
from repro.exceptions import ScenarioError
from repro.scenarios import (
    ScenarioSpec,
    build_instance,
    describe_families,
    family_schema,
    get_family,
    list_families,
    param,
    register_family,
    unregister_family,
    validate_spec,
)

#: Every family the subsystem must cover (the issue's acceptance list).
EXPECTED_FAMILIES = [
    "cycle",
    "grid",
    "isp",
    "path",
    "random_bounded_degree",
    "random_regular_bipartite",
    "sensor",
    "sidon_bipartite",
    "torus",
    "unit_disk",
]

#: Small parameters per family so the whole zoo builds fast in tests.
SMALL_PARAMS = {
    "cycle": {"n": 8},
    "grid": {"shape": (3, 3)},
    "isp": {"n_customers": 3, "n_routers": 2},
    "path": {"n": 6},
    "random_bounded_degree": {"n_agents": 8},
    "random_regular_bipartite": {"n_side": 4, "degree": 2},
    "sensor": {"n_sensors": 6, "n_relays": 3, "n_areas": 2},
    "sidon_bipartite": {"degree": 2},
    "torus": {"shape": (3, 3)},
    "unit_disk": {"n": 10, "radius": 0.4},
}


class TestRegistryContents:
    def test_every_expected_family_is_registered(self):
        assert set(EXPECTED_FAMILIES) <= set(list_families())

    def test_list_families_is_sorted(self):
        assert list_families() == sorted(list_families())

    @pytest.mark.parametrize("family", EXPECTED_FAMILIES)
    def test_family_builds_an_instance(self, family):
        spec = ScenarioSpec(family=family, params=SMALL_PARAMS[family], seed=0)
        validate_spec(spec)
        problem = build_instance(spec)
        assert isinstance(problem, MaxMinLP)
        assert problem.n_agents > 0
        assert problem.n_resources > 0
        assert problem.n_beneficiaries > 0

    @pytest.mark.parametrize("family", EXPECTED_FAMILIES)
    def test_family_has_a_schema_and_description(self, family):
        schema = family_schema(family)
        assert schema, f"{family} has no parameter schema"
        assert get_family(family).description

    def test_builds_are_deterministic_given_the_seed(self):
        from repro.engine import fingerprint_instance

        spec = ScenarioSpec(
            family="random_bounded_degree", params={"n_agents": 10}, seed=7
        )
        assert fingerprint_instance(build_instance(spec)) == fingerprint_instance(
            build_instance(spec)
        )

    def test_describe_families_rows(self):
        rows = describe_families()
        assert [row["family"] for row in rows] == list_families()
        assert all({"family", "parameters", "description"} <= set(row) for row in rows)


class TestValidation:
    def test_unknown_family_raises(self):
        with pytest.raises(ScenarioError, match="unknown instance family"):
            validate_spec(ScenarioSpec(family="does-not-exist"))

    def test_unknown_parameter_raises(self):
        spec = ScenarioSpec(family="cycle", params={"n": 8, "bogus": 1})
        with pytest.raises(ScenarioError, match="bogus"):
            validate_spec(spec)

    def test_defaults_are_applied(self):
        problem = build_instance(ScenarioSpec(family="cycle"))
        assert problem.n_agents == 40  # the schema default


class TestCustomRegistration:
    def test_register_and_unregister_a_custom_family(self):
        from repro import path_instance

        @register_family(
            "test_tmp_family",
            description="temporary",
            params={"n": param(4, "agents")},
        )
        def _build(seed, *, n):
            return path_instance(n)

        try:
            assert "test_tmp_family" in list_families()
            problem = build_instance(ScenarioSpec(family="test_tmp_family"))
            assert problem.n_agents == 4
        finally:
            assert unregister_family("test_tmp_family")
        assert "test_tmp_family" not in list_families()

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ScenarioError, match="already registered"):
            register_family("cycle")(lambda seed: None)


class TestBipartiteLifting:
    def test_incidence_instance_has_degree_bounds(self):
        problem = build_instance(
            ScenarioSpec(
                family="random_regular_bipartite",
                params={"n_side": 5, "degree": 3},
                seed=0,
            )
        )
        # Agents are the 15 edges; every resource/beneficiary support is Δ=3.
        assert problem.n_agents == 15
        assert problem.n_resources == 5
        assert problem.n_beneficiaries == 5
        bounds = problem.degree_bounds()
        assert bounds.max_resource_support == 3
        assert bounds.max_beneficiary_support == 3
