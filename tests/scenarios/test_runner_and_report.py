"""Tests for the suite runner, streaming, warm-cache behaviour and reports."""

from __future__ import annotations

import json

import pytest

from repro.engine import BatchSolver, ResultCache, RunRegistry
from repro.scenarios import (
    ScenarioGrid,
    ScenarioSpec,
    SuiteRunner,
    SuiteSpec,
    get_suite,
    render_markdown,
    render_text,
    write_artifacts,
)


def tiny_suite() -> SuiteSpec:
    return SuiteSpec(
        name="tiny",
        description="small suite for unit tests",
        grids=(
            ScenarioGrid("cycle", params={"n": 8}, radii=(1, 2)),
            ScenarioGrid("path", params={"n": [6, 8]}, radii=(1,)),
            ScenarioGrid("torus", params={"shape": (3, 3)}, radii=(1,)),
        ),
    )


class TestSuiteRunner:
    def test_lp_strategy_forwarded_and_values_agree(self):
        base = SuiteRunner().run_suite(tiny_suite())
        stacked_runner = SuiteRunner(lp_strategy="stacked", lp_chunk_size=16)
        assert stacked_runner.engine.lp_strategy == "stacked"
        assert stacked_runner.engine.lp_chunk_size == 16
        stacked = stacked_runner.run_suite(tiny_suite())
        for a, b in zip(base.results, stacked.results):
            # Optimal values are unique (unlike the solution vertices): the
            # reference optimum and safe baseline must agree to tolerance.
            assert b.optimum == pytest.approx(a.optimum, abs=1e-9)
            assert b.safe_objective == pytest.approx(a.safe_objective, abs=1e-12)

    def test_streaming_yields_one_result_per_scenario(self):
        runner = SuiteRunner()
        stream = runner.run(tiny_suite())
        first = next(stream)
        # The generator really streams: the first record arrives before the
        # rest of the suite has been consumed.
        assert first.family == "cycle"
        rest = list(stream)
        assert [r.family for r in rest] == ["path", "path", "torus"]

    def test_results_are_consistent(self):
        report = SuiteRunner().run_suite(tiny_suite())
        assert len(report.results) == 4
        for result in report.results:
            assert result.optimum > 0
            assert result.safe_ratio >= 1.0 - 1e-9
            assert result.safe_ratio <= result.safe_guarantee + 1e-9
            for entry in result.radii:
                assert entry.ratio >= 1.0 - 1e-9
                assert entry.ratio <= entry.proven_ratio_bound + 1e-6

    def test_accepts_loose_scenario_lists(self):
        specs = [ScenarioSpec(family="cycle", params={"n": 8}, radii=(1,))]
        report = SuiteRunner().run_suite(specs)
        assert len(report.results) == 1
        assert report.suite.name == "ad-hoc"

    def test_loose_specs_keep_their_labels_and_round_trip(self):
        spec = ScenarioSpec(
            family="cycle", params={"n": 8}, radii=(1,), label="my-test"
        )
        report = SuiteRunner().run_suite([spec])
        assert report.results[0].label == "my-test"
        # The embedded suite re-expands to the original spec, label included.
        assert report.suite.expand() == [spec]

    def test_on_result_callback_streams(self):
        seen = []
        report = SuiteRunner().run_suite(
            tiny_suite(), on_result=lambda r: seen.append(r.label)
        )
        assert seen == [r.label for r in report.results]

    def test_specs_are_hashable(self):
        a = ScenarioSpec(family="cycle", params={"n": 8, "weights": "unit"})
        b = ScenarioSpec(family="cycle", params={"weights": "unit", "n": 8})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1
        assert len({tiny_suite(), tiny_suite()}) == 1

    def test_shared_engine_deduplicates_across_scenarios(self):
        # The same cycle appears in two scenarios; the reference optimum is
        # submitted once thanks to the shared batch + cache.
        suite = SuiteSpec(
            name="dup",
            grids=(
                ScenarioGrid("cycle", params={"n": 8}, radii=(1,)),
                ScenarioGrid("cycle", params={"n": 8}, radii=(1, 2)),
            ),
        )
        runner = SuiteRunner()
        report = runner.run_suite(suite)
        stats = report.engine_stats
        assert stats["dedup_saved"] + report.cache_stats["hits"] > 0
        # Identical scenarios produce identical numbers.
        a, b = report.results
        assert a.optimum == b.optimum
        assert a.radii[0].objective == b.radii[0].objective

    def test_radiusless_scenarios_run_baselines_only(self):
        spec = ScenarioSpec(family="cycle", params={"n": 8}, radii=())
        (result,) = list(SuiteRunner().run([spec]))
        assert result.radii == ()
        assert result.safe_ratio >= 1.0 - 1e-9

    def test_invalid_spec_fails_before_any_solve(self):
        from repro.exceptions import ScenarioError

        suite = SuiteSpec(
            name="bad",
            grids=(
                ScenarioGrid("cycle", params={"n": 8}),
                ScenarioGrid("cycle", params={"bogus": 1}),
            ),
        )
        runner = SuiteRunner()
        with pytest.raises(ScenarioError, match="bogus"):
            next(runner.run(suite))
        assert runner.engine.stats.executed == 0


class TestWarmCache:
    def test_paper_suite_warm_rerun_solves_zero_lps(self, tmp_path):
        """Acceptance: a second run against a warm disk cache does no LP work."""
        suite = get_suite("paper")
        cold = SuiteRunner(cache=ResultCache(directory=tmp_path))
        cold_report = cold.run_suite(suite)
        assert cold.engine.stats.executed > 0

        warm = SuiteRunner(cache=ResultCache(directory=tmp_path))
        warm_report = warm.run_suite(suite)
        assert warm.engine.stats.executed == 0
        assert warm.engine.cache.stats.hits > 0

        # Warm results are bit-identical to cold ones.
        for a, b in zip(cold_report.results, warm_report.results):
            assert a.optimum == b.optimum
            assert a.safe_objective == b.safe_objective
            assert [e.objective for e in a.radii] == [e.objective for e in b.radii]

    def test_paper_suite_covers_every_family(self):
        suite = get_suite("paper")
        from repro.scenarios import list_families

        assert set(suite.families) == set(list_families())


class TestReport:
    def test_family_summaries_aggregate_ratios(self):
        report = SuiteRunner().run_suite(tiny_suite())
        rows = report.family_summaries()
        families = {row["family"] for row in rows}
        assert families == {"cycle", "path", "torus"}
        baseline_rows = [row for row in rows if row["R"] == "-"]
        assert {row["family"] for row in baseline_rows} == families
        for row in rows:
            assert row["mean_ratio"] <= row["worst_ratio"] + 1e-12
            assert row["scenarios"] >= 1

    def test_family_summaries_count_samples_per_radius(self):
        # Two cycle scenarios, but only one runs R=2: its summary row must
        # report 1 sample, not the whole-family count.
        suite = SuiteSpec(
            name="mixed",
            grids=(
                ScenarioGrid("cycle", params={"n": 8}, radii=(1,)),
                ScenarioGrid("cycle", params={"n": 10}, radii=(1, 2)),
            ),
        )
        rows = SuiteRunner().run_suite(suite).family_summaries()
        by_radius = {row["R"]: row["scenarios"] for row in rows}
        assert by_radius == {"-": 2, 1: 2, 2: 1}

    def test_render_text_and_markdown(self):
        report = SuiteRunner().run_suite(tiny_suite())
        text = render_text(report)
        assert "SUITE tiny" in text
        assert "Per-family approximation-ratio summary" in text
        md = render_markdown(report)
        assert "# Suite report: `tiny`" in md
        assert "| family" in md

    def test_write_artifacts_round_trips(self, tmp_path):
        runner = SuiteRunner(registry=RunRegistry())
        report = runner.run_suite(tiny_suite())
        paths = write_artifacts(report, tmp_path / "out")
        assert paths["json"].is_file() and paths["markdown"].is_file()
        data = json.loads(paths["json"].read_text())
        assert data["n_scenarios"] == 4
        assert len(data["results"]) == 4
        # The artefact embeds its own suite spec, so it can be re-expanded.
        embedded = SuiteSpec.from_dict(data["suite"])
        assert embedded.expand() == tiny_suite().expand()
        for record in data["results"]:
            spec = ScenarioSpec.from_dict(record["spec"])
            assert spec.scenario_id == record["scenario_id"]

    def test_engine_counters_are_reported(self):
        engine = BatchSolver(mode="serial", cache=ResultCache())
        report = SuiteRunner(engine=engine).run_suite(tiny_suite())
        assert report.engine_stats["executed"] > 0
        assert report.cache_stats["puts"] > 0
