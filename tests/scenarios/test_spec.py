"""Tests for scenario/suite specs: canonicalisation, round-trip, expansion."""

from __future__ import annotations

import pytest

from repro.scenarios import ScenarioGrid, ScenarioSpec, SuiteSpec


class TestScenarioSpec:
    def test_params_are_canonicalised_to_tuples(self):
        spec = ScenarioSpec(family="grid", params={"shape": [6, 6]})
        assert spec.params["shape"] == (6, 6)

    def test_json_round_trip_is_exact(self):
        spec = ScenarioSpec(
            family="unit_disk",
            params={"n": 36, "radius": 0.24, "max_support": 6},
            seed=3,
            radii=(1, 2),
            label="my disk",
        )
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_round_trip_preserves_nested_sequences(self):
        spec = ScenarioSpec(family="grid", params={"shape": (6, 6)})
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.params["shape"] == (6, 6)

    def test_scenario_id_is_stable_and_label_independent(self):
        a = ScenarioSpec(family="cycle", params={"n": 40}, radii=(1, 2))
        b = ScenarioSpec(family="cycle", params={"n": 40}, radii=(1, 2), label="x")
        assert a.scenario_id == b.scenario_id
        assert len(a.scenario_id) == 16

    def test_scenario_id_depends_on_content(self):
        a = ScenarioSpec(family="cycle", params={"n": 40})
        b = ScenarioSpec(family="cycle", params={"n": 41})
        c = ScenarioSpec(family="cycle", params={"n": 40}, seed=1)
        assert len({a.scenario_id, b.scenario_id, c.scenario_id}) == 3

    def test_display_label_defaults_to_content(self):
        spec = ScenarioSpec(family="cycle", params={"n": 40}, seed=2)
        assert spec.display_label == "cycle[n=40]#s2"
        assert ScenarioSpec(family="cycle", label="named").display_label == "named"

    def test_rejects_bad_radii_and_family(self):
        with pytest.raises(ValueError, match="positive integers"):
            ScenarioSpec(family="cycle", radii=(0,))
        with pytest.raises(ValueError, match="family"):
            ScenarioSpec(family="")

    def test_empty_radii_allowed(self):
        assert ScenarioSpec(family="cycle", radii=()).radii == ()


class TestScenarioGrid:
    def test_lists_are_axes_tuples_are_values(self):
        grid = ScenarioGrid(
            "grid", params={"shape": [(4, 4), (6, 6)], "weights": "unit"}
        )
        assert len(grid) == 2
        shapes = [spec.params["shape"] for spec in grid.expand()]
        assert shapes == [(4, 4), (6, 6)]
        assert all(spec.params["weights"] == "unit" for spec in grid.expand())

    def test_cartesian_product_over_axes_and_seeds(self):
        grid = ScenarioGrid(
            "random_bounded_degree",
            params={"n_agents": [10, 20], "max_resource_support": [3, 5]},
            seeds=(0, 1, 2),
            radii=(1, 2),
        )
        specs = list(grid.expand())
        assert len(grid) == len(specs) == 2 * 2 * 3
        combos = {(s.params["n_agents"], s.params["max_resource_support"], s.seed)
                  for s in specs}
        assert len(combos) == 12
        assert all(s.radii == (1, 2) for s in specs)

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError, match="no choices"):
            ScenarioGrid("cycle", params={"n": []})

    def test_scalar_seed_is_wrapped(self):
        grid = ScenarioGrid("cycle", params={"n": 8}, seeds=0)
        assert [s.seed for s in grid.expand()] == [0]

    def test_dataclasses_replace_preserves_axes(self):
        import dataclasses

        grid = ScenarioGrid(
            "grid", params={"shape": [(4, 4), (6, 6)], "weights": "unit"}
        )
        again = dataclasses.replace(grid, radii=(1, 2))
        assert len(again) == len(grid) == 2
        assert [s.params for s in again.expand()] == [s.params for s in grid.expand()]
        assert all(s.radii == (1, 2) for s in again.expand())


class TestSuiteSpec:
    def test_expansion_order_follows_declaration(self):
        suite = SuiteSpec(
            name="tiny",
            grids=(
                ScenarioGrid("cycle", params={"n": [8, 10]}),
                ScenarioGrid("path", params={"n": 6}),
            ),
        )
        families = [spec.family for spec in suite.expand()]
        assert families == ["cycle", "cycle", "path"]
        assert len(suite) == 3
        assert suite.families == ["cycle", "path"]

    def test_json_round_trip_preserves_expansion(self):
        suite = SuiteSpec(
            name="rt",
            description="round trip",
            grids=(
                ScenarioGrid(
                    "grid", params={"shape": [(4, 4), (6, 6)]}, radii=(1, 2)
                ),
                ScenarioGrid("cycle", params={"n": 8}, seeds=(0, 1)),
            ),
        )
        again = SuiteSpec.from_json(suite.to_json())
        assert again == suite
        assert again.expand() == suite.expand()

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            SuiteSpec(name="")

    def test_from_dict_keeps_scalar_literals_literal(self):
        # The JSON contract: lists are axes, anything else is one literal
        # value — a string must not be exploded into per-character choices.
        suite = SuiteSpec.from_dict(
            {
                "name": "hand-written",
                "grids": [
                    {
                        "family": "cycle",
                        "params": {"n": 8, "weights": "unit"},
                        "seeds": 0,
                        "radii": [1],
                    }
                ],
            }
        )
        (spec,) = suite.expand()
        assert spec.params == {"n": 8, "weights": "unit"}
        assert spec.seed == 0
