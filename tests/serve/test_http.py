"""The HTTP binding: endpoints, streaming, error contract, CLI startup."""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import __version__
from repro.scenarios.registry import list_families
from repro.scenarios.runner import SuiteRunner
from repro.scenarios.spec import ScenarioSpec, SuiteSpec
from repro.serve import ReproServer, SolverService

SPEC = ScenarioSpec(family="cycle", params={"n": 8}, seed=2, radii=(1,))


@pytest.fixture()
def server():
    service = SolverService()
    with ReproServer(service, port=0) as srv:
        yield srv


def _post(url: str, body: bytes):
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


def _get(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, response.read()


def _error_body(excinfo) -> dict:
    return json.loads(excinfo.value.read())


class TestEndpoints:
    def test_solve_roundtrip_matches_in_process_api(self, server):
        status, raw = _post(server.url + "/solve", SPEC.to_json().encode())
        assert status == 200
        envelope = json.loads(raw)
        assert envelope["scenario_id"] == SPEC.scenario_id
        assert envelope["source"] == "solved"
        (direct,) = list(SuiteRunner().run([SPEC]))
        expected = direct.as_dict()
        expected.pop("seconds")
        assert envelope["result"] == expected

    def test_second_identical_post_is_a_cache_hit(self, server):
        body = SPEC.to_json().encode()
        _, first_raw = _post(server.url + "/solve", body)
        _, second_raw = _post(server.url + "/solve", body)
        first, second = json.loads(first_raw), json.loads(second_raw)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]

    def test_suite_streams_ndjson(self, server):
        suite = SuiteSpec.from_dict(
            {
                "name": "stream-me",
                "grids": [
                    {"family": "cycle", "params": {"n": [6, 8]}, "radii": [1]}
                ],
            }
        )
        request = urllib.request.Request(
            server.url + "/suite", data=suite.to_json().encode(), method="POST"
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/x-ndjson"
            records = [json.loads(line) for line in response]
        assert [record["type"] for record in records] == [
            "result",
            "result",
            "summary",
        ]
        assert records[-1]["suite"] == "stream-me"
        assert records[-1]["n_scenarios"] == 2
        # Streamed per-scenario results equal the /solve results bit for bit.
        for record in records[:-1]:
            spec_json = json.dumps(record["result"]["spec"])
            _, raw = _post(server.url + "/solve", spec_json.encode())
            assert json.loads(raw)["result"] == record["result"]

    def test_healthz(self, server):
        status, raw = _get(server.url + "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["version"] == __version__

    def test_metrics_reflect_traffic(self, server):
        _post(server.url + "/solve", SPEC.to_json().encode())
        _, raw = _get(server.url + "/metrics")
        metrics = json.loads(raw)
        assert metrics["requests"]["scenario"] >= 1
        assert metrics["scenarios"]["scheduler"]["executed"] >= 1
        assert metrics["highs"]["total"] >= 1


class TestErrorContract:
    def test_malformed_json_is_400_not_500(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/solve", b"{definitely not json")
        assert excinfo.value.code == 400
        error = _error_body(excinfo)["error"]
        assert error["type"] == "bad_request"
        assert "not valid JSON" in error["message"]

    def test_schema_violation_is_400_with_message(self, server):
        body = json.dumps(
            {"family": "cycle", "params": {}, "radii": ["two"]}
        ).encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/solve", body)
        assert excinfo.value.code == 400
        assert "radii" in _error_body(excinfo)["error"]["message"]

    def test_unknown_family_400_lists_families(self, server):
        body = json.dumps({"family": "made_up", "params": {}}).encode()
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/solve", body)
        assert excinfo.value.code == 400
        message = _error_body(excinfo)["error"]["message"]
        for family in list_families():
            assert family in message

    def test_empty_body_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/solve", b"")
        assert excinfo.value.code == 400
        assert "body required" in _error_body(excinfo)["error"]["message"]

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/nope")
        assert excinfo.value.code == 404
        assert "/solve" in _error_body(excinfo)["error"]["message"]

    def test_get_on_solve_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/solve")
        assert excinfo.value.code == 405

    def test_post_on_metrics_is_405(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server.url + "/metrics", b"{}")
        assert excinfo.value.code == 405

    def test_errors_are_counted(self, server):
        with pytest.raises(urllib.error.HTTPError):
            _post(server.url + "/solve", b"broken")
        _, raw = _get(server.url + "/metrics")
        assert json.loads(raw)["requests"]["errors"] >= 1


class TestCLI:
    def test_repro_serve_subcommand_serves(self, tmp_path):
        """`repro serve --port 0` prints its URL and answers requests."""
        repo_src = Path(__file__).resolve().parents[2] / "src"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--cache-dir",
                str(tmp_path),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env={"PYTHONPATH": str(repo_src), "PATH": "/usr/bin:/bin"},
        )
        try:
            line = process.stdout.readline().strip()
            assert line.startswith("serving on http://"), line
            url = line.split("serving on ", 1)[1]
            body = SPEC.to_json().encode()
            _, first_raw = _post(url + "/solve", body)
            _, second_raw = _post(url + "/solve", body)
            assert json.loads(first_raw)["cached"] is False
            assert json.loads(second_raw)["cached"] is True
            status, raw = _get(url + "/healthz")
            assert json.loads(raw)["status"] == "ok"
        finally:
            process.terminate()
            process.wait(timeout=10)


class TestObservability:
    """The /metrics format negotiation and per-request debug tracing."""

    def _get_with_headers(self, url: str):
        with urllib.request.urlopen(url) as response:
            return response.status, dict(response.headers), response.read()

    def test_metrics_default_json_content_type(self, server):
        status, headers, raw = self._get_with_headers(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        json.loads(raw)  # well-formed

    def test_metrics_prometheus_format_and_content_type(self, server):
        _post(server.url + "/solve", SPEC.to_json().encode())
        status, headers, raw = self._get_with_headers(
            server.url + "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        text = raw.decode("utf-8")
        assert "# TYPE repro_lp_highs_calls counter" in text
        assert "repro_lp_highs_seconds_bucket{" in text
        assert "repro_requests_scenario" in text  # flattened legacy metrics

    def test_metrics_unknown_format_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server.url + "/metrics?format=xml")
        assert excinfo.value.code == 400
        error = _error_body(excinfo)["error"]
        assert error["type"] == "bad_request"
        assert "xml" in error["message"]
        assert "prometheus" in error["message"]

    def test_debug_trace_returns_span_summary(self, server):
        status, raw = _post(
            server.url + "/solve?debug=trace", SPEC.to_json().encode()
        )
        assert status == 200
        envelope = json.loads(raw)
        trace = envelope["trace"]
        assert trace["spans"] >= 1
        stages = {row["stage"] for row in trace["stages"]}
        assert "serve.request" in stages
        for row in trace["stages"]:
            assert row["count"] >= 1
            assert row["total_s"] >= 0.0

    def test_without_debug_flag_no_trace_key(self, server):
        _, raw = _post(server.url + "/solve", SPEC.to_json().encode())
        assert "trace" not in json.loads(raw)
