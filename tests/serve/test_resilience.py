"""Serve-layer resilience: deadlines, load shedding, containment, shutdown."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultSpec, install_plan
from repro.obs.metrics import get_registry
from repro.scenarios.runner import SuiteRunner
from repro.scenarios.spec import ScenarioSpec, SuiteSpec
from repro.serve import (
    DeadlineExceeded,
    ReproServer,
    ScenarioSolveError,
    SolverService,
)

SPEC = ScenarioSpec(family="cycle", params={"n": 8}, seed=2, radii=(1,))


@pytest.fixture(autouse=True)
def _isolated_fault_plan(monkeypatch):
    """Start each test without an inherited plan (e.g. from the
    ``REPRO_FAULT_PLAN`` env var the CI chaos job sets): these tests
    install their own plans and an active one would collide."""
    import repro.faults.plan as plan_module

    monkeypatch.setattr(plan_module, "_active_plan", None)
    monkeypatch.setattr(plan_module, "_env_checked", True)


def _post(url: str, body: bytes):
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, response.read()


def _get(url: str):
    with urllib.request.urlopen(url) as response:
        return response.status, response.read()


def _error_body(excinfo) -> dict:
    return json.loads(excinfo.value.read())


def _slow_request_plan(latency_s: float, max_injections: int = 1) -> FaultPlan:
    return FaultPlan(
        [
            FaultSpec(
                seam="serve.request",
                kind="latency",
                probability=1.0,
                latency_s=latency_s,
                max_injections=max_injections,
            )
        ]
    )


class TestDeadlines:
    def test_expired_deadline_is_a_504_and_the_solve_still_lands(self):
        """?deadline_s= past due -> 504; the backgrounded solve caches its
        result, so a retry of the same request succeeds from the cache."""
        service = SolverService()
        plan = _slow_request_plan(0.4)
        with ReproServer(service, port=0) as server:
            body = SPEC.to_json().encode()
            with install_plan(plan):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(server.url + "/solve?deadline_s=0.05", body)
                assert excinfo.value.code == 504
                error = _error_body(excinfo)["error"]
                assert error["type"] == "deadline_exceeded"
                assert "deadline" in error["message"]

                # The solve keeps running in the background; poll until its
                # published result answers a retry (as a cache/coalesced hit).
                deadline = time.monotonic() + 10.0
                while True:
                    try:
                        status, raw = _post(server.url + "/solve", body)
                        break
                    except urllib.error.HTTPError:  # pragma: no cover
                        if time.monotonic() > deadline:
                            raise
                        time.sleep(0.05)
            assert status == 200
            envelope = json.loads(raw)
            assert envelope["cached"] is True
            status, raw = _get(server.url + "/metrics")
            metrics = json.loads(raw)
            assert metrics["requests"]["deadline_expired"] == 1
        assert plan.injected() == 1

    def test_deadline_expiry_does_not_kill_a_coalesced_waiter(self):
        """One caller's deadline is its own problem: a concurrent waiter on
        the same scenario (no deadline) still receives the result."""
        with SolverService() as service:
            plan = _slow_request_plan(0.3)
            outcomes = {}
            owner_started = threading.Event()

            def impatient():
                owner_started.set()
                try:
                    service.solve_scenario(SPEC, deadline_s=0.05)
                except DeadlineExceeded:
                    outcomes["impatient"] = "expired"

            def patient():
                owner_started.wait(timeout=5.0)
                time.sleep(0.1)  # attach while the solve still sleeps
                outcomes["patient"] = service.solve_scenario(SPEC)

            with install_plan(plan):
                threads = [
                    threading.Thread(target=impatient),
                    threading.Thread(target=patient),
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()

            assert outcomes["impatient"] == "expired"
            envelope = outcomes["patient"]
            assert envelope["scenario_id"] == SPEC.scenario_id
            (direct,) = list(SuiteRunner().run([SPEC]))
            expected = direct.as_dict()
            expected.pop("seconds")
            assert envelope["result"] == expected


class TestLoadShedding:
    def test_full_server_sheds_with_503_and_retry_after(self):
        service = SolverService(max_inflight=1)
        shed = get_registry().counter("serve.shed")
        before = shed.value
        with ReproServer(service, port=0) as server:
            assert service.try_admit()  # occupy the only slot
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(server.url + "/solve", SPEC.to_json().encode())
                assert excinfo.value.code == 503
                assert excinfo.value.headers["Retry-After"] == "1"
                error = _error_body(excinfo)["error"]
                assert error["type"] == "overloaded"
                assert "retry" in error["message"]
            finally:
                service.release()
            # With the slot free again the same request is served.
            status, raw = _post(server.url + "/solve", SPEC.to_json().encode())
            assert status == 200
            metrics = json.loads(_get(server.url + "/metrics")[1])
            assert metrics["requests"]["shed"] == 1
        assert shed.value == before + 1

    def test_admission_is_counted_and_released(self):
        service = SolverService(max_inflight=2)
        assert service.try_admit() and service.try_admit()
        assert service.inflight == 2
        assert not service.try_admit()
        service.release()
        assert service.try_admit()
        service.release()
        service.release()
        assert service.inflight == 0
        assert service.drain(timeout=0.1)
        service.close()


class TestFailureContainment:
    def test_failed_solve_is_a_500_and_not_cached(self):
        """An injected solve failure maps to a structured 500; the failure
        is never cached, so the retry succeeds once the fault clears."""
        service = SolverService()
        plan = FaultPlan(
            [
                FaultSpec(
                    seam="serve.request", probability=1.0, max_injections=1
                )
            ]
        )
        with ReproServer(service, port=0) as server:
            body = SPEC.to_json().encode()
            with install_plan(plan):
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(server.url + "/solve", body)
                assert excinfo.value.code == 500
                error = _error_body(excinfo)["error"]
                assert error["type"] == "solve_failed"
                assert SPEC.scenario_id in error["message"]
                status, raw = _post(server.url + "/solve", body)
            assert status == 200
            assert json.loads(raw)["source"] == "solved"
        assert plan.injected() == 1

    def test_suite_stream_contains_the_failure_and_continues(self):
        """One poisoned scenario yields an error record; the stream keeps
        going and the summary counts it under ``failed``."""
        service = SolverService()
        suite = SuiteSpec.from_dict(
            {
                "name": "chaos-suite",
                "grids": [
                    {"family": "cycle", "params": {"n": [6, 8]}, "radii": [1]}
                ],
            }
        )
        # The second consultation of the seam fires: scenario 1 solves,
        # scenario 2 fails, the stream must deliver both plus the summary.
        plan = FaultPlan(
            [FaultSpec(seam="serve.request", every=2, max_injections=1)]
        )
        with ReproServer(service, port=0) as server:
            request = urllib.request.Request(
                server.url + "/suite",
                data=suite.to_json().encode(),
                method="POST",
            )
            with install_plan(plan):
                with urllib.request.urlopen(request) as response:
                    assert response.status == 200
                    records = [json.loads(line) for line in response]
        assert [record["type"] for record in records] == [
            "result",
            "error",
            "summary",
        ]
        assert records[1]["error"]["type"] == "solve_failed"
        summary = records[2]
        assert summary["n_scenarios"] == 2
        assert summary["sources"]["failed"] == 1
        assert summary["sources"]["solved"] == 1
        assert plan.injected() == 1

    def test_service_level_failure_carries_the_cause(self):
        with SolverService() as service:
            plan = FaultPlan(
                [
                    FaultSpec(
                        seam="serve.request",
                        probability=1.0,
                        max_injections=1,
                        message="chaos says no",
                    )
                ]
            )
            with install_plan(plan):
                with pytest.raises(ScenarioSolveError) as excinfo:
                    service.solve_scenario(SPEC)
            assert excinfo.value.scenario_id == SPEC.scenario_id
            assert "chaos says no" in str(excinfo.value)
            assert service.metrics()["requests"]["failed"] == 1


class TestChaosMetrics:
    def test_injections_and_retries_are_visible_in_metrics(self):
        """/metrics shows the resilience layer working: non-zero injected
        and retry counters, in JSON and the Prometheus rendering."""
        service = SolverService()
        plan = FaultPlan(
            [FaultSpec(seam="lp.highs.call", every=2)], seed=7
        )
        retries = get_registry().counter("engine.retries")
        before = retries.value
        with ReproServer(service, port=0) as server:
            with install_plan(plan):
                status, _ = _post(
                    server.url + "/solve", SPEC.to_json().encode()
                )
            assert status == 200
            assert plan.injected() > 0
            assert retries.value > before
            text = _get(server.url + "/metrics?format=prometheus")[1].decode()
        assert "repro_faults_injected_lp_highs_call" in text
        assert "repro_engine_retries" in text


class TestShutdown:
    def test_stop_raises_on_a_leaked_serving_thread(self):
        """A serving thread that survives shutdown is reported as a leak
        (RuntimeError), never silently swallowed."""
        service = SolverService()
        server = ReproServer(service, port=0).start_background()
        real_thread = server._thread
        stuck = threading.Event()
        dummy = threading.Thread(target=stuck.wait, daemon=True)
        dummy.start()
        server._thread = dummy  # simulate a thread that will not exit
        try:
            with pytest.raises(RuntimeError, match="leaked"):
                server.stop(timeout=0.2)
        finally:
            stuck.set()
            dummy.join(timeout=5.0)
            if real_thread is not None:
                real_thread.join(timeout=5.0)
            service.close()
        assert real_thread is None or not real_thread.is_alive()

    def test_stop_warns_when_inflight_requests_do_not_drain(self):
        service = SolverService()
        server = ReproServer(service, port=0).start_background()
        assert service.try_admit()  # a request that never finishes
        try:
            with pytest.warns(RuntimeWarning, match="did not drain"):
                server.stop(timeout=0.2)
        finally:
            service.release()
            service.close()

    def test_clean_stop_is_silent_and_rejoinable(self):
        service = SolverService()
        server = ReproServer(service, port=0).start_background()
        _get(server.url + "/healthz")
        server.stop(timeout=5.0)
        service.close()
