"""Per-request result verification over live HTTP (``?verify=1``)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.fingerprint import fingerprint_data
from repro.scenarios.spec import ScenarioSpec, SuiteSpec
from repro.serve import ReproServer, SolverService

SPEC = ScenarioSpec(
    family="cycle", params={"n": 8}, radii=(1,), backend="scipy"
)


def _post(url: str, body: bytes):
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def poison_serve_entry(cache_dir, *, bump=1.0):
    """Silently corrupt every scenario cache entry, refreshing its checksum.

    Recomputing the envelope digest over the tampered value models the
    adversary the checksum layer *cannot* catch (rewrite-with-valid-sum);
    only re-deriving the scenario's arithmetic — the solution certificate —
    can reject it.
    """
    poisoned = 0
    for path in (cache_dir / "serve").rglob("*.json"):
        data = json.loads(path.read_text())
        data["value"]["optimum"] = data["value"]["optimum"] + bump
        data["sha256"] = fingerprint_data(data["value"])
        path.write_text(json.dumps(data))
        poisoned += 1
    return poisoned


def serve(tmp_path, **kwargs):
    return SolverService(cache_dir=tmp_path, **kwargs)


class TestServiceApi:
    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="verify"):
            serve(tmp_path, verify="bogus")

    def test_fresh_solve_certified_on_request(self, tmp_path):
        service = serve(tmp_path)
        try:
            envelope = service.solve_scenario_json(
                SPEC.to_json(), verify=True
            )
            assert envelope["verify"] == "passed"
            assert envelope["source"] == "solved"
        finally:
            service.close()

    def test_verify_off_leaves_envelope_unmarked(self, tmp_path):
        service = serve(tmp_path)
        try:
            envelope = service.solve_scenario_json(SPEC.to_json())
            assert "verify" not in envelope
        finally:
            service.close()

    def test_service_default_applies_and_request_overrides(self, tmp_path):
        service = serve(tmp_path, verify="cached")
        try:
            on = service.solve_scenario_json(SPEC.to_json())
            assert on["verify"] == "passed"
            off = service.solve_scenario_json(SPEC.to_json(), verify=False)
            assert "verify" not in off
        finally:
            service.close()


class TestCorruptionEndToEnd:
    def test_poisoned_cache_hit_detected_quarantined_resolved(self, tmp_path):
        # Seed the disk tier with an unverified solve, then poison it.
        seeder = serve(tmp_path)
        try:
            clean = seeder.solve_scenario_json(SPEC.to_json())
        finally:
            seeder.close()
        assert poison_serve_entry(tmp_path) == 1

        service = serve(tmp_path)  # cold memory: the hit must come from disk
        try:
            with ReproServer(service, port=0) as server:
                # Unverified, the poisoned entry is served verbatim.
                _, blind = _post(
                    server.url + "/solve", SPEC.to_json().encode()
                )
                assert blind["cached"] is True
                assert (
                    blind["result"]["optimum"]
                    == clean["result"]["optimum"] + 1.0
                )

                # Verified, it is detected, quarantined and re-solved.
                with pytest.warns(RuntimeWarning, match="certificate"):
                    _, verified = _post(
                        server.url + "/solve?verify=1",
                        SPEC.to_json().encode(),
                    )
                assert verified["source"] == "solved"
                assert verified["verify"] == "passed"
                assert verified["result"] == clean["result"]
                assert list((tmp_path / "serve").rglob("*.corrupt"))
                assert service._requests["verify_failed"] == 1

                # The re-solve republished a good entry: the next verified
                # request is a certified cache hit.
                _, again = _post(
                    server.url + "/solve?verify=1", SPEC.to_json().encode()
                )
                assert again["cached"] is True
                assert again["verify"] == "passed"
        finally:
            service.close()

    def test_invalid_verify_value_is_400(self, tmp_path):
        service = serve(tmp_path)
        try:
            with ReproServer(service, port=0) as server:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    _post(
                        server.url + "/solve?verify=maybe",
                        SPEC.to_json().encode(),
                    )
                assert excinfo.value.code == 400
                body = json.loads(excinfo.value.read())
                assert "verify" in body["error"]["message"]
        finally:
            service.close()

    def test_suite_stream_verifies_per_request(self, tmp_path):
        suite = SuiteSpec.from_dict(
            {
                "name": "verified-stream",
                "grids": [
                    {
                        "family": "cycle",
                        "params": {"n": [6, 8]},
                        "radii": [1],
                        "backend": "scipy",
                    }
                ],
            }
        )
        service = serve(tmp_path)
        try:
            with ReproServer(service, port=0) as server:
                request = urllib.request.Request(
                    server.url + "/suite?verify=1",
                    data=suite.to_json().encode(),
                    method="POST",
                )
                with urllib.request.urlopen(request) as response:
                    assert response.status == 200
                    records = [json.loads(line) for line in response]
            results = [r for r in records if r["type"] == "result"]
            assert len(results) == 2
            assert all(r["verify"] == "passed" for r in results)
        finally:
            service.close()
