"""SolverService: wire-format parsing, solving, caching and observability."""

from __future__ import annotations

import math
import threading

import pytest

from repro import __version__
from repro.scenarios.registry import list_families
from repro.scenarios.runner import SuiteRunner
from repro.scenarios.spec import ScenarioSpec, SuiteSpec
from repro.serve import ServeRequestError, SolverService, scenario_request_key

#: One small scenario per registered family for the bit-identity sweep.
FAMILY_PARAMS = {
    "cycle": {"n": 16},
    "path": {"n": 12},
    "grid": {"shape": (4, 4)},
    "torus": {"shape": (4, 4)},
    "unit_disk": {"n": 16, "radius": 0.3},
    "random_bounded_degree": {"n_agents": 14},
    "random_regular_bipartite": {"n_side": 6},
    "sidon_bipartite": {"degree": 3},
    "isp": {"n_customers": 5, "n_routers": 3},
    "sensor": {"n_sensors": 10, "n_relays": 4, "n_areas": 3},
}


@pytest.fixture()
def service():
    with SolverService() as svc:
        yield svc


class TestParsing:
    def test_malformed_json_is_a_request_error(self, service):
        with pytest.raises(ServeRequestError, match="not valid JSON"):
            service.parse_scenario("{not json")

    def test_non_object_body_is_a_request_error(self, service):
        with pytest.raises(ServeRequestError, match="JSON object"):
            service.parse_scenario("[1, 2, 3]")

    def test_unknown_field_is_a_request_error(self, service):
        with pytest.raises(ServeRequestError, match="bogus"):
            service.parse_scenario(
                '{"family": "cycle", "params": {}, "bogus": 1}'
            )

    def test_wrong_radii_type_is_a_request_error(self, service):
        with pytest.raises(ServeRequestError, match="radii"):
            service.parse_scenario(
                '{"family": "cycle", "params": {}, "radii": [1.5]}'
            )

    def test_unknown_family_lists_registered_families(self, service):
        with pytest.raises(ServeRequestError) as excinfo:
            service.parse_scenario('{"family": "not_a_family", "params": {}}')
        message = str(excinfo.value)
        assert "not_a_family" in message
        for family in list_families():
            assert family in message

    def test_unknown_param_is_a_request_error(self, service):
        with pytest.raises(ServeRequestError, match="wrong_param"):
            service.parse_scenario(
                '{"family": "cycle", "params": {"wrong_param": 3}}'
            )

    def test_suite_validation_is_eager(self, service):
        suite = (
            '{"name": "s", "grids": [{"family": "cycle", "params": {}},'
            ' {"family": "nope", "params": {}}]}'
        )
        with pytest.raises(ServeRequestError, match="nope"):
            service.iter_suite_json(suite)
        # Nothing was counted as a suite request: it never started.
        assert service.metrics()["requests"]["suite"] == 0


class TestSolving:
    def test_envelope_shape_and_cached_flag(self, service):
        spec = ScenarioSpec(family="cycle", params={"n": 8}, seed=1, radii=(1,))
        first = service.solve_scenario_json(spec.to_json())
        second = service.solve_scenario_json(spec.to_json())
        assert first["scenario_id"] == spec.scenario_id
        assert first["source"] == "solved" and first["cached"] is False
        assert second["source"] == "cache" and second["cached"] is True
        # Cached and fresh answers carry byte-identical payloads.
        assert first["result"] == second["result"]
        assert "seconds" not in first["result"]

    @pytest.mark.parametrize("family", sorted(FAMILY_PARAMS))
    def test_served_result_is_bit_identical_to_in_process_api(self, family):
        """Acceptance: the server path == SuiteRunner, per registry family."""
        assert set(FAMILY_PARAMS) == set(list_families()), (
            "a registered family is missing from the bit-identity sweep; "
            "add it to FAMILY_PARAMS"
        )
        spec = ScenarioSpec(
            family=family, params=FAMILY_PARAMS[family], seed=7, radii=(1,)
        )
        with SolverService() as svc:
            served = svc.solve_scenario_json(spec.to_json())["result"]
        (direct,) = list(SuiteRunner().run([spec]))
        expected = direct.as_dict()
        expected.pop("seconds")
        assert served == expected

    def test_concurrent_identical_requests_coalesce(self, service):
        spec = ScenarioSpec(
            family="grid", params={"shape": (3, 3)}, seed=5, radii=(1,)
        )
        body = spec.to_json()
        barrier = threading.Barrier(8)
        envelopes = []
        lock = threading.Lock()

        def request():
            barrier.wait()
            envelope = service.solve_scenario_json(body)
            with lock:
                envelopes.append(envelope)

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert service.scheduler.stats.executed == 1
        assert len({str(env["result"]) for env in envelopes}) == 1
        assert sum(1 for env in envelopes if env["source"] == "solved") == 1

    def test_iter_suite_streams_results_then_summary(self, service):
        suite = SuiteSpec.from_dict(
            {
                "name": "two-cycles",
                "grids": [
                    {"family": "cycle", "params": {"n": [6, 8]}, "radii": [1]}
                ],
            }
        )
        records = list(service.iter_suite_json(suite.to_json()))
        assert [record["type"] for record in records] == [
            "result",
            "result",
            "summary",
        ]
        summary = records[-1]
        assert summary["n_scenarios"] == 2
        assert summary["sources"]["solved"] == 2
        # A replayed suite is answered purely from the cache.
        replay = list(service.iter_suite_json(suite.to_json()))
        assert replay[-1]["sources"] == {
            "cache": 2,
            "solved": 0,
            "coalesced": 0,
            "failed": 0,
        }
        assert [r["result"] for r in replay[:-1]] == [
            r["result"] for r in records[:-1]
        ]

    def test_lp_strategy_separates_request_keys(self):
        spec = ScenarioSpec(family="cycle", params={"n": 8}, radii=(1,))
        per_lp = scenario_request_key(spec, lp_strategy="per-lp")
        stacked = scenario_request_key(spec, lp_strategy="stacked")
        assert per_lp != stacked

    def test_results_survive_restart_via_disk_cache(self, tmp_path):
        spec = ScenarioSpec(family="cycle", params={"n": 10}, radii=(1,))
        with SolverService(cache_dir=tmp_path) as first:
            cold = first.solve_scenario_json(spec.to_json())
        assert cold["source"] == "solved"
        with SolverService(cache_dir=tmp_path) as second:
            warm = second.solve_scenario_json(spec.to_json())
            assert warm["source"] == "cache"
            assert warm["result"] == cold["result"]
            # The warm answer required no LP work at all.
            assert second.runner.engine.stats.executed == 0


class TestObservability:
    def test_healthz_reports_version(self, service):
        payload = service.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == __version__
        assert payload["uptime_seconds"] >= 0

    def test_metrics_layers_and_highs_window(self, service):
        spec = ScenarioSpec(family="cycle", params={"n": 8}, radii=(1,))
        service.solve_scenario_json(spec.to_json())
        first = service.metrics()
        assert first["requests"]["scenario"] == 1
        assert first["scenarios"]["scheduler"]["executed"] == 1
        assert first["scenarios"]["cache"]["misses"] == 1
        assert first["engine"]["stats"]["executed"] > 0
        assert first["highs"]["total"] > 0
        assert first["highs"]["window"] == first["highs"]["total"]
        # A cache-served replay adds no HiGHS calls: the window resets.
        service.solve_scenario_json(spec.to_json())
        second = service.metrics()
        assert second["highs"]["total"] == first["highs"]["total"]
        assert second["highs"]["window"] == 0
        assert second["scenarios"]["cache"]["hits"] == 1
        assert math.isfinite(second["uptime_seconds"])

    def test_count_error_shows_up_in_requests(self, service):
        service.count_error()
        assert service.metrics()["requests"]["errors"] == 1

    def test_close_is_idempotent(self):
        svc = SolverService()
        svc.close()
        svc.close()
