"""Unit tests for the command-line interface (`python -m repro`)."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_registry(self):
        assert set(EXPERIMENTS) == {"growth", "thm3", "safe", "thm1", "sensor", "isp"}

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["does-not-exist"])
        assert excinfo.value.code != 0

    def test_missing_argument_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_growth_experiment_runs(self, capsys):
        assert main(["growth", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Relative growth" in out
        assert "gamma(3)" in out

    def test_sensor_experiment_runs(self, capsys):
        assert main(["sensor", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "APP-SENSOR" in out
        assert "optimal" in out

    def test_isp_experiment_runs(self, capsys):
        assert main(["isp", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "APP-ISP" in out

    def test_safe_experiment_runs(self, capsys):
        assert main(["safe", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "THM-SAFE" in out
        assert "delta_VI" in out
