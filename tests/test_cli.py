"""Unit tests for the command-line interface (`python -m repro`)."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_experiment_registry(self):
        assert set(EXPERIMENTS) == {"growth", "thm3", "safe", "thm1", "sensor", "isp"}

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["does-not-exist"])
        assert excinfo.value.code != 0

    def test_unknown_suite_subcommand_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["suite", "does-not-exist"])
        assert excinfo.value.code != 0

    def test_missing_argument_rejected(self):
        with pytest.raises(SystemExit) as excinfo:
            main([])
        assert excinfo.value.code != 0

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_growth_experiment_runs(self, capsys):
        assert main(["growth", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Relative growth" in out
        assert "gamma(3)" in out

    def test_sensor_experiment_runs(self, capsys):
        assert main(["sensor", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "APP-SENSOR" in out
        assert "optimal" in out

    def test_isp_experiment_runs(self, capsys):
        assert main(["isp", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "APP-ISP" in out

    def test_safe_experiment_runs(self, capsys):
        assert main(["safe", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "THM-SAFE" in out
        assert "delta_VI" in out


class TestBatchCommand:
    def test_batch_runs_and_reports_engine_counters(self, capsys, tmp_path):
        assert (
            main(
                [
                    "batch",
                    "--family",
                    "cycle",
                    "--radii",
                    "1",
                    "--cache-dir",
                    str(tmp_path / "cache"),
                    "--out",
                    str(tmp_path / "run"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "BATCH: averaging jobs" in out
        assert "BATCH: engine counters" in out
        assert (tmp_path / "run" / "registry.json").is_file()
        assert (tmp_path / "run" / "results.json").is_file()
        assert (tmp_path / "run" / "instance-00.json").is_file()

    def test_batch_warm_rerun_hits_the_disk_cache(self, capsys, tmp_path):
        args = ["batch", "--family", "cycle", "--radii", "1", "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        counters_block = capsys.readouterr().out.split("engine counters")[1]
        rows = [
            line
            for line in counters_block.splitlines()
            if "|" in line and any(ch.isdigit() for ch in line)
        ]
        executed = int(rows[0].split("|")[2])
        assert executed == 0

    def test_batch_rejects_bad_radii(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["batch", "--family", "cycle", "--radii", "0"])

    def test_batch_thread_mode_runs(self, capsys):
        args = ["batch", "--family", "cycle", "--radii", "1", "--mode", "thread",
                "--workers", "2", "--no-cache-dir"]
        assert main(args) == 0
        assert "BATCH" in capsys.readouterr().out

    def test_batch_honours_repro_cache_dir_env(self, capsys, monkeypatch, tmp_path):
        """Without --cache-dir, batch writes where `repro cache` will look."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["batch", "--family", "cycle", "--radii", "1"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert str(tmp_path) in out
        assert any(path.suffix == ".json" for path in tmp_path.rglob("*"))


class TestSuiteCommand:
    def test_list_families_prints_the_registry(self, capsys):
        assert main(["suite", "list-families"]) == 0
        out = capsys.readouterr().out
        for family in ("grid", "torus", "unit_disk", "isp", "sensor",
                       "sidon_bipartite", "random_regular_bipartite"):
            assert family in out

    def test_show_paper_suite(self, capsys):
        assert main(["suite", "show", "paper"]) == 0
        out = capsys.readouterr().out
        assert "suite: paper" in out
        assert "scenario_id" in out
        assert "cycle[n=40]" in out

    def test_run_dry_run_expands_without_solving(self, capsys):
        assert main(["suite", "run", "paper", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "expansion only" in out
        assert "cycle" in out and "sensor" in out

    def test_run_unknown_suite_rejected(self):
        with pytest.raises(SystemExit, match="unknown suite"):
            main(["suite", "run", "no-such-suite", "--dry-run"])

    def test_run_malformed_suite_file_rejected_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="invalid suite file"):
            main(["suite", "run", str(bad), "--dry-run"])
        bad.write_text("{\"description\": \"missing name\"}")
        with pytest.raises(SystemExit, match="invalid suite file"):
            main(["suite", "run", str(bad), "--dry-run"])

    def test_run_suite_with_unknown_family_rejected_cleanly(self, tmp_path):
        bad = tmp_path / "bad-family.json"
        bad.write_text(
            '{"name": "x", "grids": [{"family": "no-such-family"}]}'
        )
        with pytest.raises(SystemExit, match="unknown instance family"):
            main(["suite", "run", str(bad), "--dry-run"])

    def test_run_custom_suite_file_with_artifacts(self, capsys, tmp_path):
        from repro.scenarios import ScenarioGrid, SuiteSpec

        suite = SuiteSpec(
            name="custom",
            grids=(ScenarioGrid("cycle", params={"n": 8}, radii=(1,)),),
        )
        suite_file = tmp_path / "suite.json"
        suite_file.write_text(suite.to_json())
        out_dir = tmp_path / "out"
        assert main([
            "suite", "run", str(suite_file),
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(out_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "[1/1]" in out
        assert "SUITE custom" in out
        assert (out_dir / "report.md").is_file()
        assert (out_dir / "registry.json").is_file()
        data = json.loads((out_dir / "results.json").read_text())
        assert data["n_scenarios"] == 1
        assert data["results"][0]["spec"]["family"] == "cycle"

    def test_run_warm_rerun_executes_zero_lps(self, capsys, tmp_path):
        from repro.scenarios import ScenarioGrid, SuiteSpec

        suite_file = tmp_path / "suite.json"
        suite_file.write_text(
            SuiteSpec(
                name="warm",
                grids=(ScenarioGrid("cycle", params={"n": 8}, radii=(1, 2)),),
            ).to_json()
        )
        args = ["suite", "run", str(suite_file), "--cache-dir", str(tmp_path / "c")]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        counters = capsys.readouterr().out.split("Engine/cache counters")[1]
        row = [line for line in counters.splitlines()
               if "|" in line and any(ch.isdigit() for ch in line)][0]
        executed = int(row.split("|")[2])
        assert executed == 0


class TestCanonCommand:
    def test_canon_stats_reports_orbits(self, capsys):
        assert main(["canon", "stats", "--family", "grid", "--radii", "1"]) == 0
        out = capsys.readouterr().out
        assert "CANON: radius-R view orbits" in out
        assert "sharing" in out
        # The 6x6 torus is vertex-transitive: one orbit for all 36 agents.
        torus_row = [line for line in out.splitlines() if "torus 6x6" in line][0]
        cells = [cell.strip() for cell in torus_row.split("|")]
        assert cells[2:4] == ["36", "1"]  # agents=36, orbits=1

    def test_canon_stats_rejects_bad_radii(self):
        with pytest.raises(SystemExit):
            main(["canon", "stats", "--radii", "0"])
        with pytest.raises(SystemExit):
            main(["canon", "stats", "--radii", "nope"])

    def test_canon_requires_subcommand(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["canon"])
        assert excinfo.value.code != 0


class TestSuiteShareOrbits:
    def _suite_file(self, tmp_path):
        from repro.scenarios import ScenarioGrid, SuiteSpec

        suite_file = tmp_path / "suite.json"
        suite_file.write_text(
            SuiteSpec(
                name="orbit-smoke",
                grids=(
                    ScenarioGrid(
                        "torus", params={"shape": [(4, 4)]}, radii=(1,)
                    ),
                ),
            ).to_json()
        )
        return suite_file

    def test_share_orbits_matches_default_run(self, capsys, tmp_path):
        suite_file = self._suite_file(tmp_path)
        base_args = ["suite", "run", str(suite_file), "--no-cache-dir"]
        assert main(base_args) == 0
        plain_out = capsys.readouterr().out
        assert main(base_args + ["--share-orbits"]) == 0
        orbit_out = capsys.readouterr().out
        table = lambda text: [
            line for line in text.splitlines() if line.startswith(" torus")
        ]
        assert table(plain_out) == table(orbit_out)

    def test_mode_and_max_workers_are_plumbed(self, capsys, tmp_path):
        suite_file = self._suite_file(tmp_path)
        assert (
            main(
                [
                    "suite",
                    "run",
                    str(suite_file),
                    "--no-cache-dir",
                    "--mode",
                    "thread",
                    "--max-workers",
                    "2",
                    "--share-orbits",
                ]
            )
            == 0
        )
        assert "SUITE orbit-smoke" in capsys.readouterr().out

    def test_workers_alias_still_accepted(self, capsys, tmp_path):
        suite_file = self._suite_file(tmp_path)
        assert (
            main(
                ["suite", "run", str(suite_file), "--no-cache-dir",
                 "--mode", "thread", "--workers", "2"]
            )
            == 0
        )
        assert "SUITE orbit-smoke" in capsys.readouterr().out


class TestCacheCommand:
    def test_cache_prune_drops_oldest_entries(self, capsys, tmp_path):
        import os

        main(["batch", "--family", "cycle", "--radii", "1",
              "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        entries = sorted(tmp_path.glob("??/*.json"))
        assert entries
        for offset, path in enumerate(entries):
            os.utime(path, (1_000_000 + offset, 1_000_000 + offset))
        total = sum(path.stat().st_size for path in entries)
        keep = entries[-1].stat().st_size
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-bytes", str(keep)]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        remaining = list(tmp_path.glob("??/*.json"))
        assert 0 < len(remaining) < len(entries)
        assert sum(path.stat().st_size for path in remaining) <= max(keep, total // len(entries))

    def test_cache_prune_requires_max_bytes(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["cache", "prune", "--cache-dir", str(tmp_path)])

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        main(["batch", "--family", "cycle", "--radii", "1", "--cache-dir", str(tmp_path)])
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "CACHE" in out
        assert str(tmp_path) in out
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "cleared" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        # After clearing, the stats table reports zero entries.
        assert " 0 " in capsys.readouterr().out.split("bytes")[1]
