"""Smoke tests for the scripts in ``examples/``.

Each example is run as a subprocess exactly the way the documentation tells
users to run it (``python examples/<name>.py``), so the examples cannot
silently rot as the library evolves.  The scripts use small fixed seeds and
finish in a couple of seconds each; these tests only assert a clean exit
and non-empty output, not specific numbers.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
EXAMPLES_DIR = REPO_ROOT / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_discovered():
    assert len(EXAMPLES) >= 5, "examples/ went missing or empty"


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[script.name for script in EXAMPLES]
)
def test_example_runs_cleanly(script: Path):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
        cwd=REPO_ROOT,
    )
    assert completed.returncode == 0, (
        f"{script.name} exited with {completed.returncode}\n"
        f"stdout:\n{completed.stdout[-2000:]}\nstderr:\n{completed.stderr[-2000:]}"
    )
    assert completed.stdout.strip(), f"{script.name} printed nothing"
