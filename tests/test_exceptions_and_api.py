"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import (
    ConstructionError,
    InfeasibleError,
    InvalidInstanceError,
    ReproError,
    SolverError,
    UnboundedError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [InvalidInstanceError, InfeasibleError, UnboundedError, SolverError, ConstructionError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catching_base_class_catches_all(self):
        with pytest.raises(ReproError):
            raise ConstructionError("boom")


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"{name} listed in __all__ but missing"

    def test_key_entry_points_present(self):
        # The names used throughout the README / examples.
        for name in (
            "MaxMinLP",
            "MaxMinLPBuilder",
            "grid_instance",
            "safe_solution",
            "local_averaging_solution",
            "optimal_solution",
            "communication_hypergraph",
            "relative_growth",
            "build_lower_bound_instance",
            "theorem1_bound",
        ):
            assert name in repro.__all__

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.apps
        import repro.distributed
        import repro.generators
        import repro.hypergraph
        import repro.lowerbound
        import repro.lp

        assert repro.lp.DEFAULT_BACKEND in repro.lp.available_backends()
