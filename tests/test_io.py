"""Unit tests for JSON (de)serialisation of instances and solutions."""

from __future__ import annotations

import pytest

from repro import (
    dump_instance,
    grid_instance,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    optimal_objective,
    solution_from_dict,
    solution_to_dict,
)


class TestInstanceRoundTrip:
    @pytest.mark.parametrize(
        "fixture", ["tiny_instance", "cycle8", "grid4x4", "random_instance", "disk_instance"]
    )
    def test_dict_roundtrip_preserves_instance(self, fixture, request):
        problem = request.getfixturevalue(fixture)
        data = instance_to_dict(problem)
        rebuilt = instance_from_dict(data)
        assert rebuilt == problem

    def test_roundtrip_preserves_optimum(self, grid4x4):
        rebuilt = instance_from_dict(instance_to_dict(grid4x4))
        assert optimal_objective(rebuilt) == pytest.approx(optimal_objective(grid4x4))

    def test_file_roundtrip(self, tmp_path, cycle8):
        path = tmp_path / "instance.json"
        dump_instance(cycle8, path)
        assert load_instance(path) == cycle8

    def test_rejects_wrong_format(self):
        with pytest.raises(ValueError):
            instance_from_dict({"format": "something-else"})

    def test_json_is_actually_serialisable(self, grid4x4):
        import json

        text = json.dumps(instance_to_dict(grid4x4))
        assert isinstance(text, str)
        assert instance_from_dict(json.loads(text)) == grid4x4

    def test_unsupported_identifier_type_rejected(self):
        from repro import MaxMinLP
        from repro.io import instance_to_dict as to_dict

        problem = MaxMinLP(
            [frozenset({1})], {("i", frozenset({1})): 1.0}, {}, validate=False
        )
        with pytest.raises(TypeError):
            to_dict(problem)


class TestSolutionRoundTrip:
    def test_roundtrip(self, grid4x4):
        x = {v: 0.1 for v in grid4x4.agents}
        data = solution_to_dict(x)
        assert solution_from_dict(data) == x

    def test_tuple_keys_survive(self):
        x = {("v", 1): 0.25, ("v", (2, 3)): 0.75}
        assert solution_from_dict(solution_to_dict(x)) == x
