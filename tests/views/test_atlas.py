"""Unit tests for the view atlas (CSR-sliced local LPs + batch canon)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BatchSolver,
    communication_hypergraph,
    cycle_instance,
    grid_instance,
    local_averaging_solution,
    partition_views,
)
from repro.canon.labeling import CanonicalIndex, view_local_structure
from repro.generators import random_bounded_degree_instance, unit_disk_instance
from repro.scenarios.registry import build_instance
from repro.scenarios.spec import ScenarioSpec
from repro.views import ViewAtlas


def _bipartite(n_side: int, seed: int = 7):
    spec = ScenarioSpec(
        family="random_regular_bipartite",
        params={"n_side": n_side, "degree": 3},
        seed=seed,
        radii=(1,),
    )
    return build_instance(spec)


FAMILIES = [
    (grid_instance((5, 5), torus=True), 2),
    (grid_instance((4, 5)), 2),
    (cycle_instance(9), 1),
    (unit_disk_instance(20, radius=0.3, max_support=5, seed=3), 1),
    (
        random_bounded_degree_instance(
            16, max_resource_support=3, max_beneficiary_support=3, seed=5
        ),
        2,
    ),
    (_bipartite(8), 1),
]


class TestAtlasStructures:
    @pytest.mark.parametrize("problem,R", FAMILIES)
    def test_local_structure_matches_scalar(self, problem, R):
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, R, hypergraph=H)
        for u in problem.agents:
            scalar_agents, scalar_cons, scalar_bens = view_local_structure(
                problem, H.ball(u, R)
            )
            agents, cons, bens = atlas.local_structure(u)
            assert set(agents) == set(scalar_agents)
            assert set(cons) == set(scalar_cons)
            assert set(bens) == set(scalar_bens)

    @pytest.mark.parametrize("problem,R", FAMILIES)
    def test_subproblem_equals_local_subproblem(self, problem, R):
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, R, hypergraph=H)
        for u in problem.agents:
            assert atlas.subproblem(u) == problem.local_subproblem(H.ball(u, R))

    @pytest.mark.parametrize("problem,R", FAMILIES)
    def test_views_and_sizes_match_balls(self, problem, R):
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, R, hypergraph=H)
        balls = {u: H.ball(u, R) for u in problem.agents}
        assert atlas.views() == balls
        sizes = atlas.view_sizes()
        for row, u in enumerate(atlas.roots):
            assert sizes[row] == len(balls[u])

    def test_from_views_arbitrary_subsets(self):
        problem = cycle_instance(8)
        views = {
            "a": frozenset(problem.agents[:3]),
            "b": frozenset(problem.agents[2:6]),
        }
        atlas = ViewAtlas.from_views(problem, views)
        assert atlas.roots == ("a", "b")
        for root, view in views.items():
            assert atlas.subproblem(root) == problem.local_subproblem(view)

    def test_from_views_unknown_agent_rejected(self):
        problem = cycle_instance(5)
        with pytest.raises(KeyError):
            ViewAtlas.from_views(problem, {"a": frozenset({"ghost"})})

    def test_unknown_root_rejected(self):
        problem = cycle_instance(5)
        atlas = ViewAtlas.from_problem(problem, 1)
        with pytest.raises(KeyError):
            atlas.local_structure("ghost")


class TestBatchCanonicalForms:
    @pytest.mark.parametrize("problem,R", FAMILIES)
    def test_forms_equal_scalar_canonical_index(self, problem, R):
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, R, hypergraph=H)
        batch_forms = atlas.canonical_forms(CanonicalIndex())
        index = CanonicalIndex()
        for u in problem.agents:
            agents, cons, bens = view_local_structure(problem, H.ball(u, R))
            assert batch_forms[u] == index.canonical_form(agents, cons, bens)

    @pytest.mark.parametrize("problem,R", FAMILIES[:3])
    def test_partition_vectorized_equals_scalar(self, problem, R):
        fast = partition_views(problem, R, vectorized=True)
        slow = partition_views(problem, R, vectorized=False)
        assert [orbit.key for orbit in fast.orbits] == [
            orbit.key for orbit in slow.orbits
        ]
        assert [orbit.members for orbit in fast.orbits] == [
            orbit.members for orbit in slow.orbits
        ]
        assert fast.forms == slow.forms

    def test_batch_stable_colors_equal_scalar_refinement(self):
        from repro.canon.labeling import _build_canonicalizer

        problem = grid_instance((4, 4))
        H = communication_hypergraph(problem)
        atlas = ViewAtlas.from_problem(problem, 2, hypergraph=H)
        atlas._ensure_structures()
        rows = list(range(atlas.n_views))
        batch = atlas._batch_stable_colors(rows)
        for row, root in enumerate(atlas.roots):
            agents, cons, bens = view_local_structure(problem, H.ball(root, 2))
            canonicalizer, _a, _r, _b = _build_canonicalizer(
                agents, cons, bens, 2048
            )
            scalar = canonicalizer.refine(canonicalizer.initial_colors())
            assert np.array_equal(scalar, batch[row])


class TestVectorizedAveraging:
    @pytest.mark.parametrize("problem,R", FAMILIES)
    @pytest.mark.parametrize("share_orbits", [False, True])
    def test_bit_identical_to_scalar_path(self, problem, R, share_orbits):
        fast = local_averaging_solution(
            problem,
            R,
            engine=BatchSolver(),
            share_orbits=share_orbits,
            vectorized=True,
        )
        slow = local_averaging_solution(
            problem,
            R,
            engine=BatchSolver(),
            share_orbits=share_orbits,
            vectorized=False,
        )
        assert fast.x == slow.x
        assert fast.beta == slow.beta
        assert fast.objective == slow.objective
        assert fast.view_sizes == slow.view_sizes
        assert fast.local_objectives == slow.local_objectives
        assert fast.resource_ratio == slow.resource_ratio
        assert fast.beneficiary_ratio == slow.beneficiary_ratio
        assert fast.proven_ratio_bound == slow.proven_ratio_bound

    def test_keep_local_solutions_matches_scalar(self):
        problem = grid_instance((4, 4), torus=True)
        fast = local_averaging_solution(
            problem,
            2,
            engine=BatchSolver(),
            share_orbits=True,
            vectorized=True,
            keep_local_solutions=True,
        )
        slow = local_averaging_solution(
            problem,
            2,
            engine=BatchSolver(),
            share_orbits=True,
            vectorized=False,
            keep_local_solutions=True,
        )
        assert fast.local_solutions == slow.local_solutions

    def test_solve_local_lp_batch_matches_singles(self):
        from repro.core.local_averaging import solve_local_lp, solve_local_lp_batch

        problem = cycle_instance(7)
        H = communication_hypergraph(problem)
        views = [H.ball(u, 1) for u in problem.agents[:4]]
        engine = BatchSolver()
        batched = solve_local_lp_batch(problem, views, engine=engine)
        assert engine.stats.batches == 1
        singles = [
            solve_local_lp(problem, view, engine=BatchSolver()) for view in views
        ]
        assert batched == singles
