"""Unit tests for the batch ball kernel (repro.views.balls)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import communication_hypergraph, cycle_instance, grid_instance
from repro.hypergraph.hypergraph import Hypergraph
from repro.views import ball_membership, batch_balls


class TestBallMembership:
    def test_matches_per_source_balls_on_torus(self):
        H = communication_hypergraph(grid_instance((5, 5), torus=True))
        for radius in (0, 1, 2, 4):
            assert batch_balls(H, radius) == {
                v: H.ball(v, radius) for v in H.nodes
            }

    def test_matches_per_source_balls_on_cycle(self):
        H = communication_hypergraph(cycle_instance(9))
        for radius in (0, 1, 3, 10):
            assert batch_balls(H, radius) == {
                v: H.ball(v, radius) for v in H.nodes
            }

    def test_disconnected_graph(self):
        H = Hypergraph("abcd", {"e1": ["a", "b"], "e2": ["c", "d"]})
        assert batch_balls(H, 2) == {v: H.ball(v, 2) for v in H.nodes}

    def test_singleton_and_isolated_nodes(self):
        H = Hypergraph(["x", "y"], {"loop": ["x"]})
        assert batch_balls(H, 1) == {"x": frozenset({"x"}), "y": frozenset({"y"})}

    def test_sources_subset_rows(self):
        H = communication_hypergraph(grid_instance((4, 4)))
        sources = [(0, 0), (2, 2)]
        membership = ball_membership(H, 1, sources=sources)
        assert membership.shape == (2, H.n_nodes)
        balls = batch_balls(H, 1, sources=sources)
        assert set(balls) == set(sources)
        for v in sources:
            assert balls[v] == H.ball(v, 1)

    def test_membership_rows_are_sorted_binary(self):
        H = communication_hypergraph(grid_instance((4, 4), torus=True))
        membership = ball_membership(H, 2)
        assert membership.has_sorted_indices
        assert set(np.unique(membership.data)) == {1}

    def test_radius_beyond_diameter_saturates(self):
        H = communication_hypergraph(cycle_instance(6))
        full = ball_membership(H, 50)
        assert full.nnz == H.n_nodes * H.n_nodes

    def test_negative_radius_rejected(self):
        H = communication_hypergraph(cycle_instance(4))
        with pytest.raises(ValueError):
            ball_membership(H, -1)

    def test_unknown_source_rejected(self):
        H = communication_hypergraph(cycle_instance(4))
        with pytest.raises(KeyError):
            ball_membership(H, 1, sources=["nope"])


class TestHypergraphCsr:
    def test_adjacency_csr_matches_dict_adjacency(self):
        H = communication_hypergraph(grid_instance((4, 3)))
        adjacency = H.adjacency_csr()
        for v in H.nodes:
            row = adjacency.indices[
                adjacency.indptr[H.node_position(v)]:
                adjacency.indptr[H.node_position(v) + 1]
            ]
            assert {H.nodes[j] for j in row} == H.neighbours(v)

    def test_adjacency_csr_is_cached(self):
        H = communication_hypergraph(cycle_instance(5))
        assert H.adjacency_csr() is H.adjacency_csr()

    def test_ball_sizes_incremental_profile(self):
        H = communication_hypergraph(grid_instance((5, 5), torus=True))
        for v in list(H.nodes)[:5]:
            sizes = H.ball_sizes(v, 4)
            assert sizes == [len(H.ball(v, r)) for r in range(5)]
            assert sizes == sorted(sizes)  # balls are nested

    def test_ball_sizes_rejects_negative(self):
        H = communication_hypergraph(cycle_instance(4))
        with pytest.raises(ValueError):
            H.ball_sizes(H.nodes[0], -1)
